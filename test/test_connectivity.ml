open Ftr_graph

let kappa = Connectivity.vertex_connectivity

let test_known_families () =
  Alcotest.(check int) "cycle" 2 (kappa (Families.cycle 9));
  Alcotest.(check int) "path" 1 (kappa (Families.path_graph 5));
  Alcotest.(check int) "complete 5" 4 (kappa (Families.complete 5));
  Alcotest.(check int) "hypercube 3" 3 (kappa (Families.hypercube 3));
  Alcotest.(check int) "hypercube 4" 4 (kappa (Families.hypercube 4));
  Alcotest.(check int) "petersen" 3 (kappa (Families.petersen ()));
  Alcotest.(check int) "grid (corners)" 2 (kappa (Families.grid 4 4));
  Alcotest.(check int) "torus" 4 (kappa (Families.torus 4 4));
  Alcotest.(check int) "ccc" 3 (kappa (Families.ccc 3));
  Alcotest.(check int) "star" 1 (kappa (Families.star 6));
  Alcotest.(check int) "complete bipartite 2,3" 2 (kappa (Families.complete_bipartite 2 3))

let test_edge_cases () =
  Alcotest.(check int) "empty" 0 (kappa (Graph.empty 0));
  Alcotest.(check int) "singleton" 0 (kappa (Graph.empty 1));
  Alcotest.(check int) "two isolated" 0 (kappa (Graph.empty 2));
  Alcotest.(check int) "K2" 1 (kappa (Families.complete 2));
  Alcotest.(check int) "disconnected" 0 (kappa (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]))

let test_cut_vertex () =
  (* Two triangles sharing vertex 2: kappa = 1. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ] in
  Alcotest.(check int) "cut vertex" 1 (kappa g)

let test_is_k_connected () =
  let g = Families.hypercube 4 in
  Alcotest.(check bool) "4-connected" true (Connectivity.is_k_connected g 4);
  Alcotest.(check bool) "not 5-connected" false (Connectivity.is_k_connected g 5);
  Alcotest.(check bool) "trivially 0" true (Connectivity.is_k_connected g 0);
  Alcotest.(check bool) "complete" true (Connectivity.is_k_connected (Families.complete 4) 3)

let test_min_vertex_cut () =
  let g = Families.torus 4 4 in
  match Connectivity.min_vertex_cut g with
  | None -> Alcotest.fail "expected a cut"
  | Some cut ->
      Alcotest.(check int) "size = kappa" 4 (List.length cut);
      Alcotest.(check bool) "separates" true (Separator.is_separator g cut)

let test_min_vertex_cut_complete () =
  Alcotest.(check bool) "complete has none" true
    (Connectivity.min_vertex_cut (Families.complete 4) = None)

let test_min_vertex_cut_disconnected () =
  Alcotest.(check (option (list int))) "empty cut" (Some [])
    (Connectivity.min_vertex_cut (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]))

let test_matches_menger_on_random () =
  (* kappa(G) <= local connectivity of every non-adjacent pair. *)
  let rng = Random.State.make [| 11 |] in
  for _ = 1 to 5 do
    match Random_graphs.connected_gnp ~rng 14 0.3 with
    | None -> ()
    | Some g ->
        let k = kappa g in
        Alcotest.(check bool) "k <= min degree" true (k <= Graph.min_degree g);
        for u = 0 to 13 do
          for v = u + 1 to 13 do
            if not (Graph.mem_edge g u v) then
              let local = Disjoint_paths.st_connectivity g ~src:u ~dst:v () in
              Alcotest.(check bool) "kappa lower-bounds local" true (k <= local)
          done
        done;
        Alcotest.(check bool) "is_k_connected agrees" true
          (Connectivity.is_k_connected g k);
        Alcotest.(check bool) "is_(k+1) fails" false
          (Connectivity.is_k_connected g (k + 1))
  done

let test_edge_connectivity () =
  Alcotest.(check int) "cycle" 2 (Connectivity.edge_connectivity (Families.cycle 8));
  Alcotest.(check int) "path" 1 (Connectivity.edge_connectivity (Families.path_graph 5));
  Alcotest.(check int) "complete 5" 4 (Connectivity.edge_connectivity (Families.complete 5));
  Alcotest.(check int) "hypercube 3" 3 (Connectivity.edge_connectivity (Families.hypercube 3));
  Alcotest.(check int) "petersen" 3 (Connectivity.edge_connectivity (Families.petersen ()));
  Alcotest.(check int) "disconnected" 0
    (Connectivity.edge_connectivity (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]));
  Alcotest.(check int) "singleton" 0 (Connectivity.edge_connectivity (Graph.empty 1))

let test_whitney_inequalities () =
  (* kappa <= lambda <= min degree on assorted graphs. *)
  List.iter
    (fun g ->
      let k = kappa g and l = Connectivity.edge_connectivity g in
      Alcotest.(check bool) "kappa <= lambda" true (k <= l);
      Alcotest.(check bool) "lambda <= delta" true
        (Graph.n g < 2 || l <= Graph.min_degree g))
    [
      Families.cycle 7; Families.wheel 8; Families.grid 3 5; Families.ccc 3;
      Families.petersen (); Families.star 5; Families.shuffle_exchange 3;
    ]

let test_articulation_points () =
  (* Two triangles sharing vertex 2. *)
  let g = Graph.of_edges ~n:5 [ (0, 1); (1, 2); (2, 0); (2, 3); (3, 4); (4, 2) ] in
  Alcotest.(check (list int)) "shared vertex" [ 2 ] (Connectivity.articulation_points g);
  Alcotest.(check (list int)) "cycle has none" []
    (Connectivity.articulation_points (Families.cycle 6));
  Alcotest.(check (list int)) "path interior" [ 1; 2; 3 ]
    (Connectivity.articulation_points (Families.path_graph 5));
  Alcotest.(check (list int)) "star hub" [ 0 ]
    (Connectivity.articulation_points (Families.star 5))

let test_bridges () =
  Alcotest.(check (list (pair int int))) "path edges" [ (0, 1); (1, 2) ]
    (Connectivity.bridges (Families.path_graph 3));
  Alcotest.(check (list (pair int int))) "cycle none" []
    (Connectivity.bridges (Families.cycle 5));
  (* two triangles joined by one edge 2-3 *)
  let g = Graph.of_edges ~n:6 [ (0,1); (1,2); (2,0); (3,4); (4,5); (5,3); (2,3) ] in
  Alcotest.(check (list (pair int int))) "joining edge" [ (2, 3) ] (Connectivity.bridges g)

let test_articulation_consistent_with_kappa () =
  let rng = Random.State.make [| 21 |] in
  for _ = 1 to 5 do
    match Random_graphs.connected_gnp ~rng 16 0.25 with
    | None -> ()
    | Some g ->
        let has_cut = Connectivity.articulation_points g <> [] in
        let k = kappa g in
        if Graph.n g >= 3 then
          Alcotest.(check bool) "kappa=1 iff articulation point" has_cut (k = 1)
  done

let () =
  Alcotest.run "connectivity"
    [
      ( "connectivity",
        [
          Alcotest.test_case "known families" `Quick test_known_families;
          Alcotest.test_case "edge cases" `Quick test_edge_cases;
          Alcotest.test_case "cut vertex" `Quick test_cut_vertex;
          Alcotest.test_case "is_k_connected" `Quick test_is_k_connected;
          Alcotest.test_case "min vertex cut" `Quick test_min_vertex_cut;
          Alcotest.test_case "cut of complete" `Quick test_min_vertex_cut_complete;
          Alcotest.test_case "cut of disconnected" `Quick test_min_vertex_cut_disconnected;
          Alcotest.test_case "Menger consistency" `Quick test_matches_menger_on_random;
          Alcotest.test_case "edge connectivity" `Quick test_edge_connectivity;
          Alcotest.test_case "Whitney inequalities" `Quick test_whitney_inequalities;
          Alcotest.test_case "articulation points" `Quick test_articulation_points;
          Alcotest.test_case "bridges" `Quick test_bridges;
          Alcotest.test_case "articulation vs kappa" `Quick test_articulation_consistent_with_kappa;
        ] );
    ]
