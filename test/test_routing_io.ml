open Ftr_graph
open Ftr_core

let roundtrip_equal a b =
  Routing.route_count a = Routing.route_count b
  &&
  let same = ref true in
  Routing.iter
    (fun src dst p ->
      match Routing.find b src dst with
      | Some q when Path.equal p q -> ()
      | _ -> same := false)
    a;
  !same

let test_roundtrip_bidirectional () =
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:3 in
  let text = Routing_io.to_string c.Construction.routing in
  match Routing_io.load g text with
  | Ok loaded ->
      Alcotest.(check bool) "identical" true
        (roundtrip_equal c.Construction.routing loaded)
  | Error e -> Alcotest.fail e

let test_roundtrip_unidirectional () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional g ~t:1 in
  let text = Routing_io.to_string c.Construction.routing in
  match Routing_io.load g text with
  | Ok loaded ->
      Alcotest.(check bool) "identical" true
        (roundtrip_equal c.Construction.routing loaded)
  | Error e -> Alcotest.fail e

let test_header () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1 ]);
  let text = Routing_io.to_string r in
  Alcotest.(check string) "header" "ftr-routing 1 6 bi"
    (List.hd (String.split_on_char '\n' text))

let fails g text expected_fragment =
  match Routing_io.load g text with
  | Ok _ -> Alcotest.fail "expected load error"
  | Error e ->
      let contains =
        let nl = String.length expected_fragment and hl = String.length e in
        let rec go i =
          i + nl <= hl && (String.sub e i nl = expected_fragment || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (e ^ " mentions " ^ expected_fragment) true contains

let test_load_errors () =
  let g = Families.cycle 6 in
  fails g "garbage" "not an ftr-routing";
  fails g "ftr-routing 1 7 bi\n" "mismatch";
  fails g "ftr-routing 1 6 bi\n0 2 0,2\n" "not in graph";
  fails g "ftr-routing 1 6 bi\n0 2 0,1,1,2\n" "repeated vertex";
  fails g "ftr-routing 1 6 bi\n0 2 1,2\n" "endpoints disagree";
  fails g "ftr-routing 1 6 bi\n0 x 0,1\n" "malformed";
  fails g "ftr-routing 1 6 bi\n0 2 0,1,2\n0 2 0,5,4,3,2\n" "conflicting"

let test_empty_table () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Unidirectional in
  let text = Routing_io.to_string r in
  match Routing_io.load g text with
  | Ok loaded -> Alcotest.(check int) "still empty" 0 (Routing.route_count loaded)
  | Error e -> Alcotest.fail e

let test_deterministic_output () =
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:3 in
  Alcotest.(check string) "stable"
    (Routing_io.to_string c.Construction.routing)
    (Routing_io.to_string c.Construction.routing)

let () =
  Alcotest.run "routing_io"
    [
      ( "routing_io",
        [
          Alcotest.test_case "roundtrip bi" `Quick test_roundtrip_bidirectional;
          Alcotest.test_case "roundtrip uni" `Quick test_roundtrip_unidirectional;
          Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "load errors" `Quick test_load_errors;
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "deterministic" `Quick test_deterministic_output;
        ] );
    ]
