open Ftr_graph
open Ftr_core

let roundtrip_equal a b =
  Routing.route_count a = Routing.route_count b
  &&
  let same = ref true in
  Routing.iter
    (fun src dst p ->
      match Routing.find b src dst with
      | Some q when Path.equal p q -> ()
      | _ -> same := false)
    a;
  !same

let test_roundtrip_bidirectional () =
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:3 in
  let text = Routing_io.to_string c.Construction.routing in
  match Routing_io.load g text with
  | Ok loaded ->
      Alcotest.(check bool) "identical" true
        (roundtrip_equal c.Construction.routing loaded)
  | Error e -> Alcotest.fail e

let test_roundtrip_unidirectional () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional g ~t:1 in
  let text = Routing_io.to_string c.Construction.routing in
  match Routing_io.load g text with
  | Ok loaded ->
      Alcotest.(check bool) "identical" true
        (roundtrip_equal c.Construction.routing loaded)
  | Error e -> Alcotest.fail e

let test_header () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1 ]);
  let text = Routing_io.to_string r in
  Alcotest.(check string) "header" "ftr-routing 1 6 bi"
    (List.hd (String.split_on_char '\n' text))

let fails g text expected_fragment =
  match Routing_io.load g text with
  | Ok _ -> Alcotest.fail "expected load error"
  | Error e ->
      let contains =
        let nl = String.length expected_fragment and hl = String.length e in
        let rec go i =
          i + nl <= hl && (String.sub e i nl = expected_fragment || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) (e ^ " mentions " ^ expected_fragment) true contains

let test_load_errors () =
  let g = Families.cycle 6 in
  fails g "garbage" "not an ftr-routing";
  fails g "ftr-routing 1 7 bi\n" "mismatch";
  fails g "ftr-routing 1 6 bi\n0 2 0,2\n" "not in graph";
  fails g "ftr-routing 1 6 bi\n0 2 0,1,1,2\n" "repeated vertex";
  fails g "ftr-routing 1 6 bi\n0 2 1,2\n" "endpoints disagree";
  fails g "ftr-routing 1 6 bi\n0 x 0,1\n" "malformed";
  fails g "ftr-routing 1 6 bi\n0 2 0,1,2\n0 2 0,5,4,3,2\n" "conflicting"

let test_empty_table () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Unidirectional in
  let text = Routing_io.to_string r in
  match Routing_io.load g text with
  | Ok loaded -> Alcotest.(check int) "still empty" 0 (Routing.route_count loaded)
  | Error e -> Alcotest.fail e

(* Version-2 persistence: a compact routing with a one-token spec
   round-trips through a single header line — no O(n^2) rows — and the
   loader re-validates n and the spec against the given graph. *)
let test_v2_roundtrip () =
  let g = Families.hypercube 4 in
  let r = Routing.of_compact g Routing.Unidirectional (Compact.hypercube 4) in
  let text = Routing_io.to_string r in
  Alcotest.(check string) "one header line"
    "ftr-routing 2 16 uni compact hypercube:4"
    (String.trim text);
  match Routing_io.load g text with
  | Ok loaded ->
      Alcotest.(check string) "compact backend survives"
        (Routing.backend_name r) (Routing.backend_name loaded);
      Alcotest.(check bool) "identical" true (roundtrip_equal r loaded)
  | Error e -> Alcotest.fail e

let test_v2_bidirectional_roundtrip () =
  let g = Families.hypercube 3 in
  let r =
    Routing.of_compact g Routing.Bidirectional
      (Compact.hypercube ~bidirectional:true 3)
  in
  match Routing_io.load g (Routing_io.to_string r) with
  | Ok loaded ->
      Alcotest.(check bool) "identical" true (roundtrip_equal r loaded)
  | Error e -> Alcotest.fail e

let test_v2_load_errors () =
  let g = Families.cycle 6 in
  (* header says n=16 but the graph has 6 vertices *)
  fails g "ftr-routing 2 16 uni compact hypercube:4" "mismatch";
  fails g "ftr-routing 2 6 uni compact hypercube:4" "";
  fails g "ftr-routing 2 6 uni compact nonsense:9" "";
  fails (Families.hypercube 4) "ftr-routing 2 16 uni compact hypercube:4\n0 1 0,1\n"
    ""

(* A packed compact routing has no spec: it must fall back to the
   version-1 row format and load as an equivalent table. *)
let test_packed_falls_back_to_v1 () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional g ~t:1 in
  let packed = Routing.compact_copy c.Construction.routing in
  let text = Routing_io.to_string packed in
  Alcotest.(check string) "v1 header" "ftr-routing 1 12 uni"
    (List.hd (String.split_on_char '\n' text));
  match Routing_io.load g text with
  | Ok loaded ->
      Alcotest.(check bool) "identical" true (roundtrip_equal packed loaded)
  | Error e -> Alcotest.fail e

let test_deterministic_output () =
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:3 in
  Alcotest.(check string) "stable"
    (Routing_io.to_string c.Construction.routing)
    (Routing_io.to_string c.Construction.routing)

let () =
  Alcotest.run "routing_io"
    [
      ( "routing_io",
        [
          Alcotest.test_case "roundtrip bi" `Quick test_roundtrip_bidirectional;
          Alcotest.test_case "roundtrip uni" `Quick test_roundtrip_unidirectional;
          Alcotest.test_case "header" `Quick test_header;
          Alcotest.test_case "load errors" `Quick test_load_errors;
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "v2 compact roundtrip" `Quick test_v2_roundtrip;
          Alcotest.test_case "v2 bidirectional roundtrip" `Quick
            test_v2_bidirectional_roundtrip;
          Alcotest.test_case "v2 load errors" `Quick test_v2_load_errors;
          Alcotest.test_case "packed falls back to v1" `Quick
            test_packed_falls_back_to_v1;
          Alcotest.test_case "deterministic" `Quick test_deterministic_output;
        ] );
    ]
