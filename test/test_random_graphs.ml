open Ftr_graph

let rng () = Random.State.make [| 2024 |]

let test_gnp_bounds () =
  let g = Random_graphs.gnp ~rng:(rng ()) 30 0.2 in
  Alcotest.(check int) "n" 30 (Graph.n g);
  Alcotest.(check bool) "m below max" true (Graph.m g <= 30 * 29 / 2)

let test_gnp_extremes () =
  let g0 = Random_graphs.gnp ~rng:(rng ()) 10 0.0 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.m g0);
  let g1 = Random_graphs.gnp ~rng:(rng ()) 10 1.0 in
  Alcotest.(check int) "p=1 complete" 45 (Graph.m g1);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Random_graphs.gnp: p outside [0,1]") (fun () ->
      ignore (Random_graphs.gnp ~rng:(rng ()) 5 1.5))

let test_gnp_deterministic () =
  let a = Random_graphs.gnp ~rng:(Random.State.make [| 7 |]) 20 0.3 in
  let b = Random_graphs.gnp ~rng:(Random.State.make [| 7 |]) 20 0.3 in
  Alcotest.(check bool) "same seed same graph" true (Graph.equal a b)

let test_gnm () =
  let g = Random_graphs.gnm ~rng:(rng ()) 20 30 in
  Alcotest.(check int) "exact edges" 30 (Graph.m g);
  Alcotest.check_raises "too many" (Invalid_argument "Random_graphs.gnm: bad edge count")
    (fun () -> ignore (Random_graphs.gnm ~rng:(rng ()) 4 7))

let test_regular () =
  let g = Random_graphs.regular ~rng:(rng ()) 20 3 in
  Alcotest.(check int) "n" 20 (Graph.n g);
  Alcotest.(check int) "min" 3 (Graph.min_degree g);
  Alcotest.(check int) "max" 3 (Graph.max_degree g)

let test_regular_parity () =
  Alcotest.check_raises "odd n*d"
    (Invalid_argument "Random_graphs.regular: n * d must be even") (fun () ->
      ignore (Random_graphs.regular ~rng:(rng ()) 5 3))

let test_regular_range () =
  Alcotest.check_raises "d >= n"
    (Invalid_argument "Random_graphs.regular: need 0 <= d < n") (fun () ->
      ignore (Random_graphs.regular ~rng:(rng ()) 4 4))

let test_connected_gnp () =
  match Random_graphs.connected_gnp ~rng:(rng ()) 30 0.25 with
  | Some g -> Alcotest.(check bool) "connected" true (Traversal.is_connected g)
  | None -> Alcotest.fail "dense gnp should connect within 100 tries"

let test_connected_gnp_hopeless () =
  Alcotest.(check bool) "p=0 never connects" true
    (Random_graphs.connected_gnp ~rng:(rng ()) ~max_tries:5 10 0.0 = None)

let test_sample_k_connected () =
  match Random_graphs.sample_k_connected ~rng:(rng ()) 20 0.5 ~k:3 with
  | Some g -> Alcotest.(check bool) "3-connected" true (Connectivity.is_k_connected g 3)
  | None -> Alcotest.fail "dense gnp should be 3-connected"

let () =
  Alcotest.run "random_graphs"
    [
      ( "random_graphs",
        [
          Alcotest.test_case "gnp bounds" `Quick test_gnp_bounds;
          Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
          Alcotest.test_case "gnp deterministic" `Quick test_gnp_deterministic;
          Alcotest.test_case "gnm" `Quick test_gnm;
          Alcotest.test_case "regular" `Quick test_regular;
          Alcotest.test_case "regular parity" `Quick test_regular_parity;
          Alcotest.test_case "regular range" `Quick test_regular_range;
          Alcotest.test_case "connected gnp" `Quick test_connected_gnp;
          Alcotest.test_case "hopeless gnp" `Quick test_connected_gnp_hopeless;
          Alcotest.test_case "k-connected sample" `Quick test_sample_k_connected;
        ] );
    ]
