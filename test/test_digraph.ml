open Ftr_graph

let test_of_edges () =
  let d = Digraph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 1); (2, 2) ] in
  Alcotest.(check int) "arcs deduped, self dropped" 2 (Digraph.arc_count d);
  Alcotest.(check bool) "0->1" true (Digraph.mem_arc d 0 1);
  Alcotest.(check bool) "1->0 absent" false (Digraph.mem_arc d 1 0)

let test_builder () =
  let b = Digraph.Builder.create 4 in
  Digraph.Builder.add_arc b 0 1;
  Digraph.Builder.add_arc b 1 0;
  Digraph.Builder.add_arc b 3 2;
  let d = Digraph.Builder.to_digraph b in
  Alcotest.(check int) "arcs" 3 (Digraph.arc_count d);
  Alcotest.(check (array int)) "succ 0" [| 1 |] (Digraph.succ d 0)

let test_symmetric () =
  let sym = Digraph.of_edges ~n:2 [ (0, 1); (1, 0) ] in
  let asym = Digraph.of_edges ~n:2 [ (0, 1) ] in
  Alcotest.(check bool) "symmetric" true (Digraph.is_symmetric sym);
  Alcotest.(check bool) "asymmetric" false (Digraph.is_symmetric asym)

let test_bfs_directed () =
  (* 0 -> 1 -> 2, and 2 -> 0: distances follow arc direction. *)
  let d = Digraph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ] in
  let dist = Digraph.bfs d 0 in
  Alcotest.(check (array int)) "dist from 0" [| 0; 1; 2 |] dist;
  let dist2 = Digraph.bfs d 2 in
  Alcotest.(check (array int)) "dist from 2" [| 1; 2; 0 |] dist2

let test_bfs_unreachable () =
  let d = Digraph.of_edges ~n:3 [ (0, 1) ] in
  let dist = Digraph.bfs d 1 in
  Alcotest.(check (array int)) "only self" [| -1; 0; -1 |] dist

let test_bfs_allowed () =
  let d = Digraph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 3) ] in
  let dist = Digraph.bfs d ~allowed:(fun v -> v <> 3) 0 in
  Alcotest.(check int) "3 blocked" (-1) dist.(3);
  Alcotest.(check int) "2 via 1" 2 dist.(2)

let test_bfs_blocked_source () =
  let d = Digraph.of_edges ~n:2 [ (0, 1) ] in
  let dist = Digraph.bfs d ~allowed:(fun _ -> false) 0 in
  Alcotest.(check (array int)) "all -1" [| -1; -1 |] dist

let () =
  Alcotest.run "digraph"
    [
      ( "digraph",
        [
          Alcotest.test_case "of_edges" `Quick test_of_edges;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "symmetric" `Quick test_symmetric;
          Alcotest.test_case "bfs directed" `Quick test_bfs_directed;
          Alcotest.test_case "bfs unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "bfs allowed" `Quick test_bfs_allowed;
          Alcotest.test_case "bfs blocked source" `Quick test_bfs_blocked_source;
        ] );
    ]
