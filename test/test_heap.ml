open Ftr_sim

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check int) "size" 0 (Heap.size h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun k -> Heap.push h k k) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let popped = List.init 5 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list (float 0.0)))
    "sorted" [ 1.0; 2.0; 3.0; 4.0; 5.0 ] (List.map fst popped)

let test_fifo_ties () =
  let h = Heap.create () in
  Heap.push h 1.0 "a";
  Heap.push h 1.0 "b";
  Heap.push h 1.0 "c";
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] order

let test_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h 2.0 "x";
  Alcotest.(check bool) "peek" true (Heap.peek h = Some (2.0, "x"));
  Alcotest.(check int) "still there" 1 (Heap.size h)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h 3.0 3;
  Heap.push h 1.0 1;
  Alcotest.(check bool) "pop 1" true (Heap.pop h = Some (1.0, 1));
  Heap.push h 2.0 2;
  Alcotest.(check bool) "pop 2" true (Heap.pop h = Some (2.0, 2));
  Alcotest.(check bool) "pop 3" true (Heap.pop h = Some (3.0, 3))

let test_large_random () =
  let h = Heap.create () in
  let rng = Random.State.make [| 123 |] in
  let keys = List.init 1000 (fun _ -> Random.State.float rng 100.0) in
  List.iter (fun k -> Heap.push h k ()) keys;
  let rec drain last acc =
    match Heap.pop h with
    | None -> acc
    | Some (k, ()) ->
        Alcotest.(check bool) "non-decreasing" true (k >= last);
        drain k (acc + 1)
  in
  Alcotest.(check int) "all popped" 1000 (drain neg_infinity 0)

let () =
  Alcotest.run "heap"
    [
      ( "heap",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "ordering" `Quick test_ordering;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
          Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
          Alcotest.test_case "interleaved" `Quick test_interleaved;
          Alcotest.test_case "large random" `Quick test_large_random;
        ] );
    ]
