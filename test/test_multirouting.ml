open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let test_add_symmetric () =
  let g = Families.cycle 6 in
  let mt = Multirouting.create g in
  Multirouting.add mt (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check int) "forward" 1 (List.length (Multirouting.routes mt 0 2));
  Alcotest.(check int) "reverse" 1 (List.length (Multirouting.routes mt 2 0));
  Multirouting.add mt (Path.of_list [ 0; 5; 4; 3; 2 ]);
  Alcotest.(check int) "parallel" 2 (List.length (Multirouting.routes mt 0 2));
  Alcotest.(check int) "max width" 2 (Multirouting.max_width mt)

let test_add_dedup () =
  let g = Families.cycle 6 in
  let mt = Multirouting.create g in
  Multirouting.add mt (Path.of_list [ 0; 1; 2 ]);
  Multirouting.add mt (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check int) "dedup" 1 (List.length (Multirouting.routes mt 0 2))

let test_surviving_any_route () =
  let g = Families.cycle 6 in
  let mt = Multirouting.create g in
  Multirouting.add mt (Path.of_list [ 0; 1; 2 ]);
  Multirouting.add mt (Path.of_list [ 0; 5; 4; 3; 2 ]);
  (* killing 1 leaves the long route alive *)
  let dg = Multirouting.surviving mt ~faults:(Bitset.of_list 6 [ 1 ]) in
  Alcotest.(check bool) "arc survives" true (Digraph.mem_arc dg 0 2);
  (* killing both 1 and 4 removes the pair *)
  let dg2 = Multirouting.surviving mt ~faults:(Bitset.of_list 6 [ 1; 4 ]) in
  Alcotest.(check bool) "arc dead" false (Digraph.mem_arc dg2 0 2)

let test_full_diameter_one () =
  let g = Families.petersen () in
  let mt = Multirouting.full g ~t:2 in
  (* every pair gets t+1 = 3 disjoint routes; any 2 faults leave one *)
  let seq = Tolerance.subsets_up_to (List.init 10 Fun.id) 2 in
  Seq.iter
    (fun faults_list ->
      let faults = Bitset.of_list 10 faults_list in
      Alcotest.(check distance)
        (Printf.sprintf "diam with {%s}" (String.concat "," (List.map string_of_int faults_list)))
        (Metrics.Finite (if 10 - List.length faults_list <= 1 then 0 else 1))
        (Multirouting.diameter mt ~faults))
    seq

let test_full_width () =
  let g = Families.cycle 8 in
  let mt = Multirouting.full g ~t:1 in
  Alcotest.(check int) "width 2 on cycle" 2 (Multirouting.max_width mt)

let test_kernel_plus_bound_3 () =
  let g = Families.hypercube 3 in
  let mt, m = Multirouting.kernel_plus g ~t:2 in
  Alcotest.(check bool) "M separates" true (Separator.is_separator g m);
  Seq.iter
    (fun faults_list ->
      let faults = Bitset.of_list 8 faults_list in
      let d = Multirouting.diameter mt ~faults in
      Alcotest.(check bool) "diam <= 3" true (Metrics.distance_le d (Metrics.Finite 3)))
    (Tolerance.subsets_up_to (List.init 8 Fun.id) 2)

let test_mult_construction () =
  let g = Families.petersen () in
  let mt, m = Multirouting.mult g ~t:2 in
  Alcotest.(check bool) "M separates" true (Separator.is_separator g m);
  (* measured: the width-2 single-set construction keeps a small
     surviving diameter for up to t faults *)
  Seq.iter
    (fun faults_list ->
      let faults = Bitset.of_list 10 faults_list in
      let d = Multirouting.diameter mt ~faults in
      Alcotest.(check bool) "diam <= 4" true (Metrics.distance_le d (Metrics.Finite 4)))
    (Tolerance.subsets_up_to (List.init 10 Fun.id) 2)

let test_mult_width_capped_at_two () =
  (* A separator's member neighborhoods can overlap (unlike a
     neighborhood set), which would offer third routes; the budget of
     observation (3) must still be respected. *)
  let g = Families.torus 5 5 in
  let mt, _ = Multirouting.mult g ~t:3 in
  Alcotest.(check bool) "width <= 2" true (Multirouting.max_width mt <= 2);
  (* and it still tolerates t faults with a small diameter *)
  let faults = Bitset.of_list 25 [ 3; 12; 20 ] in
  Alcotest.(check bool) "small diameter" true
    (Metrics.distance_le (Multirouting.diameter mt ~faults) (Metrics.Finite 4))

let test_route_count () =
  let g = Families.cycle 6 in
  let mt = Multirouting.create g in
  Multirouting.add mt (Path.of_list [ 0; 1 ]);
  Multirouting.add mt (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check int) "entries" 4 (Multirouting.route_count mt)

let test_rejects_bad_path () =
  let g = Families.cycle 6 in
  let mt = Multirouting.create g in
  Alcotest.check_raises "chord" (Invalid_argument "Multirouting.add: path not in graph")
    (fun () -> Multirouting.add mt (Path.of_list [ 0; 2 ]))

let () =
  Alcotest.run "multirouting"
    [
      ( "multirouting",
        [
          Alcotest.test_case "add symmetric" `Quick test_add_symmetric;
          Alcotest.test_case "dedup" `Quick test_add_dedup;
          Alcotest.test_case "surviving any-route" `Quick test_surviving_any_route;
          Alcotest.test_case "full: diameter 1" `Slow test_full_diameter_one;
          Alcotest.test_case "full: cycle width" `Quick test_full_width;
          Alcotest.test_case "kernel_plus <= 3" `Slow test_kernel_plus_bound_3;
          Alcotest.test_case "MULT construction" `Slow test_mult_construction;
          Alcotest.test_case "MULT width cap" `Quick test_mult_width_capped_at_two;
          Alcotest.test_case "route count" `Quick test_route_count;
          Alcotest.test_case "rejects bad path" `Quick test_rejects_bad_path;
        ] );
    ]
