open Ftr_sim

let test_empty () =
  Alcotest.(check bool) "none" true (Stats.summarize [] = None);
  Alcotest.(check bool) "ints none" true (Stats.of_ints [] = None)

let test_single () =
  match Stats.summarize [ 5.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check int) "count" 1 s.Stats.count;
      Alcotest.(check (float 0.0)) "mean" 5.0 s.Stats.mean;
      Alcotest.(check (float 0.0)) "p99" 5.0 s.Stats.p99

let test_known_values () =
  let values = List.init 100 (fun i -> float_of_int (i + 1)) in
  match Stats.summarize values with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check (float 1e-9)) "mean" 50.5 s.Stats.mean;
      Alcotest.(check (float 0.0)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 0.0)) "max" 100.0 s.Stats.max;
      Alcotest.(check (float 0.0)) "p50 nearest-rank" 50.0 s.Stats.p50;
      Alcotest.(check (float 0.0)) "p95" 95.0 s.Stats.p95;
      Alcotest.(check (float 0.0)) "p99" 99.0 s.Stats.p99

let test_unsorted_input () =
  match Stats.summarize [ 3.0; 1.0; 2.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check (float 0.0)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 0.0)) "p50" 2.0 s.Stats.p50

let test_of_ints () =
  match Stats.of_ints [ 1; 2; 3; 4 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s -> Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean

let test_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "two buckets" 2 (List.length h);
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "counts" [ 2; 2 ] counts

let test_histogram_degenerate () =
  Alcotest.(check int) "empty input" 0 (List.length (Stats.histogram ~buckets:3 []));
  let h = Stats.histogram ~buckets:3 [ 5.0; 5.0 ] in
  Alcotest.(check int) "equal values in one bucket" 2
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 h)

(* Regression: a Delivered message whose [delivered_at] was never set
   (it is initialised to NaN) used to feed a NaN latency into
   [summarize], where polymorphic sort order is undefined — p50/p95
   could come out NaN or the whole order could scramble. Now the
   latency is [None] and the summary is NaN-free. *)
let test_nan_latency_dropped () =
  let msg id status ~at =
    let m = Message.make ~id ~src:0 ~dst:1 ~sent_at:0.0 in
    m.Message.status <- status;
    m.Message.delivered_at <- at;
    m
  in
  let phantom = msg 0 Message.Delivered ~at:nan in
  Alcotest.(check bool) "phantom delivery has no latency" true
    (Message.latency phantom = None);
  let batch =
    [ phantom; msg 1 Message.Delivered ~at:10.0; msg 2 Message.Delivered ~at:20.0 ]
  in
  let d = Stats.delivery_report batch in
  match d.Stats.latency with
  | None -> Alcotest.fail "expected latency summary"
  | Some s ->
      Alcotest.(check int) "finite latencies only" 2 s.Stats.count;
      List.iter
        (fun (label, v) ->
          Alcotest.(check bool) (label ^ " finite") true (Float.is_finite v))
        [ ("mean", s.Stats.mean); ("p50", s.Stats.p50); ("p95", s.Stats.p95);
          ("p99", s.Stats.p99); ("min", s.Stats.min); ("max", s.Stats.max) ]

(* [summarize] itself must shrug off poisoned samples wherever they
   come from. *)
let test_summarize_drops_non_finite () =
  Alcotest.(check bool) "all-NaN input" true (Stats.summarize [ nan; nan ] = None);
  match Stats.summarize [ 3.0; nan; 1.0; infinity; 2.0; neg_infinity ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check int) "count" 3 s.Stats.count;
      Alcotest.(check (float 1e-9)) "mean" 2.0 s.Stats.mean;
      Alcotest.(check (float 0.0)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 0.0)) "max" 3.0 s.Stats.max;
      Alcotest.(check (float 0.0)) "p50" 2.0 s.Stats.p50

(* Nearest-rank percentile against the definition, written naively. *)
let percentile_oracle =
  QCheck.Test.make ~name:"percentile matches nearest-rank oracle" ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_bound_exclusive 1000.0))
        (float_bound_inclusive 100.0))
    (fun (values, p) ->
      QCheck.assume (values <> []);
      let p = Float.max 0.1 p in
      let sorted = Array.of_list values in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let naive =
        (* smallest element with at least p% of the sample at or below
           it: rank ceil(p/100 * n), 1-based, clamped into range *)
        let rank = int_of_float (Float.ceil (p /. 100.0 *. float_of_int n)) in
        let rank = max 1 (min n rank) in
        sorted.(rank - 1)
      in
      Stats.percentile sorted p = naive)

let test_delivery_report () =
  let msg id status ~sent ~at ~retries =
    let m = Message.make ~id ~src:0 ~dst:1 ~sent_at:sent in
    m.Message.status <- status;
    m.Message.delivered_at <- at;
    m.Message.retries <- retries;
    m
  in
  let batch =
    [
      msg 0 Message.Delivered ~sent:0.0 ~at:10.0 ~retries:0;
      msg 1 Message.Delivered ~sent:0.0 ~at:30.0 ~retries:2;
      msg 2 Message.Undeliverable ~sent:0.0 ~at:0.0 ~retries:1;
      msg 3 Message.DeadLetter ~sent:0.0 ~at:0.0 ~retries:8;
      msg 4 Message.Pending ~sent:0.0 ~at:0.0 ~retries:0;
    ]
  in
  let d = Stats.delivery_report batch in
  Alcotest.(check int) "sent" 5 d.Stats.sent;
  Alcotest.(check int) "delivered" 2 d.Stats.delivered;
  Alcotest.(check int) "undeliverable" 1 d.Stats.undeliverable;
  Alcotest.(check int) "dead letters" 1 d.Stats.dead_letters;
  Alcotest.(check int) "pending" 1 d.Stats.pending;
  Alcotest.(check int) "replans" 11 d.Stats.replans;
  Alcotest.(check (float 1e-9)) "rate" 0.4 (Stats.delivery_rate d);
  (match d.Stats.latency with
  | None -> Alcotest.fail "expected latency summary"
  | Some s ->
      Alcotest.(check int) "latency over delivered only" 2 s.Stats.count;
      Alcotest.(check (float 1e-9)) "mean latency" 20.0 s.Stats.mean);
  let empty = Stats.delivery_report [] in
  Alcotest.(check (float 0.0)) "empty batch rate" 1.0 (Stats.delivery_rate empty)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "unsorted" `Quick test_unsorted_input;
          Alcotest.test_case "of_ints" `Quick test_of_ints;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram degenerate" `Quick test_histogram_degenerate;
          Alcotest.test_case "delivery report" `Quick test_delivery_report;
          Alcotest.test_case "nan latency dropped" `Quick test_nan_latency_dropped;
          Alcotest.test_case "summarize drops non-finite" `Quick
            test_summarize_drops_non_finite;
          QCheck_alcotest.to_alcotest percentile_oracle;
        ] );
    ]
