open Ftr_sim

let test_empty () =
  Alcotest.(check bool) "none" true (Stats.summarize [] = None);
  Alcotest.(check bool) "ints none" true (Stats.of_ints [] = None)

let test_single () =
  match Stats.summarize [ 5.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check int) "count" 1 s.Stats.count;
      Alcotest.(check (float 0.0)) "mean" 5.0 s.Stats.mean;
      Alcotest.(check (float 0.0)) "p99" 5.0 s.Stats.p99

let test_known_values () =
  let values = List.init 100 (fun i -> float_of_int (i + 1)) in
  match Stats.summarize values with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check (float 1e-9)) "mean" 50.5 s.Stats.mean;
      Alcotest.(check (float 0.0)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 0.0)) "max" 100.0 s.Stats.max;
      Alcotest.(check (float 0.0)) "p50 nearest-rank" 50.0 s.Stats.p50;
      Alcotest.(check (float 0.0)) "p95" 95.0 s.Stats.p95;
      Alcotest.(check (float 0.0)) "p99" 99.0 s.Stats.p99

let test_unsorted_input () =
  match Stats.summarize [ 3.0; 1.0; 2.0 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s ->
      Alcotest.(check (float 0.0)) "min" 1.0 s.Stats.min;
      Alcotest.(check (float 0.0)) "p50" 2.0 s.Stats.p50

let test_of_ints () =
  match Stats.of_ints [ 1; 2; 3; 4 ] with
  | None -> Alcotest.fail "expected summary"
  | Some s -> Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean

let test_histogram () =
  let h = Stats.histogram ~buckets:2 [ 0.0; 1.0; 2.0; 3.0 ] in
  Alcotest.(check int) "two buckets" 2 (List.length h);
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "counts" [ 2; 2 ] counts

let test_histogram_degenerate () =
  Alcotest.(check int) "empty input" 0 (List.length (Stats.histogram ~buckets:3 []));
  let h = Stats.histogram ~buckets:3 [ 5.0; 5.0 ] in
  Alcotest.(check int) "equal values in one bucket" 2
    (List.fold_left (fun acc (_, _, c) -> acc + c) 0 h)

let test_delivery_report () =
  let msg id status ~sent ~at ~retries =
    let m = Message.make ~id ~src:0 ~dst:1 ~sent_at:sent in
    m.Message.status <- status;
    m.Message.delivered_at <- at;
    m.Message.retries <- retries;
    m
  in
  let batch =
    [
      msg 0 Message.Delivered ~sent:0.0 ~at:10.0 ~retries:0;
      msg 1 Message.Delivered ~sent:0.0 ~at:30.0 ~retries:2;
      msg 2 Message.Undeliverable ~sent:0.0 ~at:0.0 ~retries:1;
      msg 3 Message.DeadLetter ~sent:0.0 ~at:0.0 ~retries:8;
      msg 4 Message.Pending ~sent:0.0 ~at:0.0 ~retries:0;
    ]
  in
  let d = Stats.delivery_report batch in
  Alcotest.(check int) "sent" 5 d.Stats.sent;
  Alcotest.(check int) "delivered" 2 d.Stats.delivered;
  Alcotest.(check int) "undeliverable" 1 d.Stats.undeliverable;
  Alcotest.(check int) "dead letters" 1 d.Stats.dead_letters;
  Alcotest.(check int) "pending" 1 d.Stats.pending;
  Alcotest.(check int) "replans" 11 d.Stats.replans;
  Alcotest.(check (float 1e-9)) "rate" 0.4 (Stats.delivery_rate d);
  (match d.Stats.latency with
  | None -> Alcotest.fail "expected latency summary"
  | Some s ->
      Alcotest.(check int) "latency over delivered only" 2 s.Stats.count;
      Alcotest.(check (float 1e-9)) "mean latency" 20.0 s.Stats.mean);
  let empty = Stats.delivery_report [] in
  Alcotest.(check (float 0.0)) "empty batch rate" 1.0 (Stats.delivery_rate empty)

let () =
  Alcotest.run "stats"
    [
      ( "stats",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "single" `Quick test_single;
          Alcotest.test_case "known values" `Quick test_known_values;
          Alcotest.test_case "unsorted" `Quick test_unsorted_input;
          Alcotest.test_case "of_ints" `Quick test_of_ints;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram degenerate" `Quick test_histogram_degenerate;
          Alcotest.test_case "delivery report" `Quick test_delivery_report;
        ] );
    ]
