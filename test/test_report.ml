(* Report roll-ups over experiment tables, including the degenerate
   shapes that used to crash. *)

module A = Ftr_analysis

(* Regression: [last_cell []] used to be [List.nth_opt row (-1)],
   which raises [Invalid_argument] instead of returning [None]. *)
let test_last_cell () =
  Alcotest.(check (option string)) "empty row" None (A.Report.last_cell []);
  Alcotest.(check (option string)) "singleton" (Some "a") (A.Report.last_cell [ "a" ]);
  Alcotest.(check (option string))
    "last of many" (Some "c")
    (A.Report.last_cell [ "a"; "b"; "c" ])

(* An empty-headers table is the only way to build empty rows; every
   roll-up entry point must survive them. *)
let empty_rows_table = A.Table.make ~title:"degenerate" ~headers:[] [ []; [] ]

let test_violations_empty_rows () =
  let results = [ ("degenerate", empty_rows_table) ] in
  Alcotest.(check int) "no violations" 0 (List.length (A.Report.violations results))

let test_markdown_empty_rows () =
  let results = [ ("degenerate", empty_rows_table) ] in
  let doc = A.Report.markdown ~header:"# Results" results in
  Alcotest.(check bool) "renders" true (String.length doc > 0)

let test_violations_found () =
  let t =
    A.Table.make ~title:"claims" ~headers:[ "claim"; "verdict" ]
      [ [ "d=3"; "ok" ]; [ "d=4"; "VIOLATION" ] ]
  in
  match A.Report.violations [ ("claims", t) ] with
  | [ (id, rows) ] ->
      Alcotest.(check string) "experiment id" "claims" id;
      Alcotest.(check int) "one bad row" 1 (List.length rows)
  | other -> Alcotest.failf "expected one group, got %d" (List.length other)

let () =
  Alcotest.run "report"
    [
      ( "report",
        [
          Alcotest.test_case "last cell" `Quick test_last_cell;
          Alcotest.test_case "violations on empty rows" `Quick
            test_violations_empty_rows;
          Alcotest.test_case "markdown on empty rows" `Quick test_markdown_empty_rows;
          Alcotest.test_case "violations found" `Quick test_violations_found;
        ] );
    ]
