open Ftr_graph
open Ftr_core

let cycle6 = Families.cycle 6

let test_add_and_find () =
  let r = Routing.create cycle6 Routing.Unidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check bool) "mem" true (Routing.mem r 0 2);
  Alcotest.(check bool) "reverse absent" false (Routing.mem r 2 0);
  Alcotest.(check int) "count" 1 (Routing.route_count r)

let test_bidirectional_symmetry () =
  let r = Routing.create cycle6 Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check bool) "forward" true (Routing.mem r 0 2);
  (match Routing.find r 2 0 with
  | Some p -> Alcotest.(check (list int)) "reversed path" [ 2; 1; 0 ] (Path.to_list p)
  | None -> Alcotest.fail "reverse missing");
  Alcotest.(check int) "two oriented routes" 2 (Routing.route_count r)

let test_duplicate_identical_ok () =
  let r = Routing.create cycle6 Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check int) "no duplicates" 2 (Routing.route_count r)

let test_conflict_raises () =
  let r = Routing.create cycle6 Routing.Unidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  (match Routing.add r (Path.of_list [ 0; 5; 4; 3; 2 ]) with
  | exception Routing.Conflict { src = 0; dst = 2; _ } -> ()
  | exception e -> Alcotest.fail ("wrong exception: " ^ Printexc.to_string e)
  | () -> Alcotest.fail "expected Conflict")

let test_bidirectional_reverse_conflict () =
  let r = Routing.create cycle6 Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  (* installing 2->0 via the other side conflicts with the implied
     reverse 2->1->0 *)
  match Routing.add r (Path.of_list [ 2; 3; 4; 5; 0 ]) with
  | exception Routing.Conflict _ -> ()
  | () -> Alcotest.fail "expected Conflict"

let test_rejects_invalid_paths () =
  let r = Routing.create cycle6 Routing.Unidirectional in
  Alcotest.check_raises "not in graph" (Invalid_argument "Routing.add: path not in graph")
    (fun () -> Routing.add r (Path.of_list [ 0; 2 ]));
  Alcotest.check_raises "trivial" (Invalid_argument "Routing.add: trivial path")
    (fun () -> Routing.add r (Path.of_list [ 0 ]))

let test_add_edge_routes () =
  let r = Routing.create cycle6 Routing.Bidirectional in
  Routing.add_edge_routes r;
  Alcotest.(check int) "2m routes" 12 (Routing.route_count r);
  Alcotest.(check int) "all length 1" 1 (Routing.max_route_length r)

let test_complete_reverses () =
  let r = Routing.create cycle6 Routing.Unidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Routing.add r (Path.of_list [ 2; 3; 4 ]);
  Routing.add r (Path.of_list [ 4; 3; 2 ]);
  Routing.complete_reverses r;
  Alcotest.(check int) "one reverse added" 4 (Routing.route_count r);
  match Routing.find r 2 0 with
  | Some p -> Alcotest.(check (list int)) "reverse of 0->2" [ 2; 1; 0 ] (Path.to_list p)
  | None -> Alcotest.fail "missing reverse"

let test_complete_reverses_bidirectional_rejected () =
  let r = Routing.create cycle6 Routing.Bidirectional in
  Alcotest.check_raises "rejected"
    (Invalid_argument
       "Routing.complete_reverses: bidirectional tables are already symmetric")
    (fun () -> Routing.complete_reverses r)

let test_stats () =
  let r = Routing.create cycle6 Routing.Unidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Routing.add r (Path.of_list [ 3; 4 ]);
  Alcotest.(check int) "max length" 2 (Routing.max_route_length r);
  Alcotest.(check int) "total edges" 3 (Routing.total_route_edges r)

let test_stretch () =
  let r = Routing.create cycle6 Routing.Unidirectional in
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Routing.stretch r);
  Routing.add r (Path.of_list [ 0; 1 ]);
  Alcotest.(check (float 1e-9)) "shortest" 1.0 (Routing.stretch r);
  (* 0 -> 2 the long way: 4 edges vs distance 2 *)
  Routing.add r (Path.of_list [ 0; 5; 4; 3; 2 ]);
  Alcotest.(check (float 1e-9)) "detour" 2.0 (Routing.stretch r)

let test_validate_ok () =
  let r = Routing.create cycle6 Routing.Bidirectional in
  Routing.add_edge_routes r;
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Alcotest.(check bool) "valid" true (Routing.validate r = Ok ())

let () =
  Alcotest.run "routing"
    [
      ( "routing",
        [
          Alcotest.test_case "add & find" `Quick test_add_and_find;
          Alcotest.test_case "bidirectional symmetry" `Quick test_bidirectional_symmetry;
          Alcotest.test_case "identical duplicate" `Quick test_duplicate_identical_ok;
          Alcotest.test_case "conflict raises" `Quick test_conflict_raises;
          Alcotest.test_case "reverse conflict" `Quick test_bidirectional_reverse_conflict;
          Alcotest.test_case "invalid paths" `Quick test_rejects_invalid_paths;
          Alcotest.test_case "edge routes" `Quick test_add_edge_routes;
          Alcotest.test_case "complete reverses" `Quick test_complete_reverses;
          Alcotest.test_case "complete_reverses kind" `Quick test_complete_reverses_bidirectional_rejected;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "stretch" `Quick test_stretch;
          Alcotest.test_case "validate" `Quick test_validate_ok;
        ] );
    ]
