open Ftr_graph
open Ftr_core

let no_faults n = Bitset.create n

(* Exhaustively check that the lemma-level properties hold for every
   fault set of size <= t. *)
let assert_properties_exhaustive (c : Construction.t) ~t =
  let n = Graph.n (Routing.graph c.Construction.routing) in
  Seq.iter
    (fun faults_list ->
      let faults = Bitset.of_list n faults_list in
      let reports = Properties.check c ~faults in
      List.iter
        (fun r ->
          if not r.Properties.holds then
            Alcotest.failf "F={%s}: %a"
              (String.concat "," (List.map string_of_int faults_list))
              Properties.pp_report r)
        reports)
    (Tolerance.subsets_up_to (List.init n Fun.id) t)

let test_kernel_lemma1 () =
  assert_properties_exhaustive (Kernel.make (Families.hypercube 3) ~t:2) ~t:2

let test_circular_properties () =
  assert_properties_exhaustive (Circular.make (Families.cycle 12) ~t:1) ~t:1

let test_circular_large_k_uses_circ12 () =
  (* K = 4 >= 2t+1 = 3 on the 12-cycle: reports must be CIRC 1/2. *)
  let c = Circular.make (Families.cycle 12) ~t:1 in
  let reports = Properties.check c ~faults:(no_faults 12) in
  Alcotest.(check (list string)) "property names" [ "CIRC 1"; "CIRC 2" ]
    (List.map (fun r -> r.Properties.property) reports)

let test_circular_small_k_uses_circ () =
  (* ccc(3) has t = 2; a 4-member neighborhood set sits below the
     2t+1 = 5 threshold, so Lemma 9's Property CIRC is what applies. *)
  let g = Families.ccc 3 in
  let m = List.filteri (fun i _ -> i < 4) (Independent.greedy g) in
  let c = Circular.make ~m g ~t:2 in
  let reports = Properties.check c ~faults:(no_faults (Graph.n g)) in
  Alcotest.(check (list string)) "property CIRC" [ "CIRC" ]
    (List.map (fun r -> r.Properties.property) reports);
  assert_properties_exhaustive c ~t:1

let test_tri_circular_properties () =
  assert_properties_exhaustive
    (Tri_circular.make (Families.cycle 45) ~t:1 ~variant:Tri_circular.Full)
    ~t:1

let test_tri_circular_small_properties () =
  assert_properties_exhaustive
    (Tri_circular.make (Families.cycle 27) ~t:1 ~variant:Tri_circular.Small)
    ~t:1

let test_bipolar_uni_properties () =
  assert_properties_exhaustive
    (Bipolar.make_unidirectional (Families.cycle 12) ~t:1)
    ~t:1

let test_bipolar_bi_properties () =
  assert_properties_exhaustive
    (Bipolar.make_bidirectional (Families.cycle 12) ~t:1)
    ~t:1

let test_narrow_window_uses_weak_property () =
  let g = Families.ccc 4 in
  let m = Independent.greedy g in
  let c = Circular.make ~m ~window:1 g ~t:2 in
  let reports = Properties.check c ~faults:(no_faults (Graph.n g)) in
  Alcotest.(check (list string)) "falls back to CIRC" [ "CIRC" ]
    (List.map (fun r -> r.Properties.property) reports)

let test_unstructured_is_empty () =
  let c = Minimal_routing.make (Families.cycle 6) in
  Alcotest.(check int) "no reports" 0
    (List.length (Properties.check c ~faults:(no_faults 6)))

let test_detects_violation () =
  (* Sabotage: a kernel construction whose routing table was replaced
     by edge routes only. Distant nodes then have no surviving edge
     into M, and the property checker must say so. *)
  let g = Families.cycle 12 in
  let c = Kernel.make g ~t:1 in
  let sparse = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes sparse;
  let broken = { c with Construction.routing = sparse } in
  let reports = Properties.check broken ~faults:(no_faults 12) in
  Alcotest.(check bool) "violation found" false (Properties.all_hold reports);
  let failing = List.find (fun r -> not r.Properties.holds) reports in
  Alcotest.(check bool) "counterexample given" true
    (failing.Properties.counterexample <> None)

let test_all_hold () =
  Alcotest.(check bool) "empty" true (Properties.all_hold []);
  let c = Kernel.make (Families.cycle 12) ~t:1 in
  Alcotest.(check bool) "healthy" true
    (Properties.all_hold (Properties.check c ~faults:(no_faults 12)))

let () =
  Alcotest.run "properties"
    [
      ( "properties",
        [
          Alcotest.test_case "kernel Lemma 1" `Quick test_kernel_lemma1;
          Alcotest.test_case "circular (exhaustive)" `Quick test_circular_properties;
          Alcotest.test_case "circular large K names" `Quick test_circular_large_k_uses_circ12;
          Alcotest.test_case "circular small K" `Quick test_circular_small_k_uses_circ;
          Alcotest.test_case "tri-circular full" `Slow test_tri_circular_properties;
          Alcotest.test_case "tri-circular small" `Quick test_tri_circular_small_properties;
          Alcotest.test_case "bipolar uni" `Quick test_bipolar_uni_properties;
          Alcotest.test_case "bipolar bi" `Quick test_bipolar_bi_properties;
          Alcotest.test_case "narrow window weak property" `Quick test_narrow_window_uses_weak_property;
          Alcotest.test_case "unstructured" `Quick test_unstructured_is_empty;
          Alcotest.test_case "detects violations" `Quick test_detects_violation;
          Alcotest.test_case "all_hold" `Quick test_all_hold;
        ] );
    ]
