(* The adversarial fault-search engine: search quality against
   exhaustive ground truth and uniform random sampling, witness
   shrinking, determinism, and the persistent witness corpus. *)

open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

(* Small instances where exhaustive enumeration is the ground truth. *)
let small_instances () =
  [
    ("hypercube(3)/kernel", Kernel.make (Families.hypercube 3) ~t:2, 2);
    ("ccc(3)/kernel", Kernel.make (Families.ccc 3) ~t:2, 2);
    ("cycle(12)/bipolar-uni", Bipolar.make_unidirectional (Families.cycle 12) ~t:1, 1);
  ]

(* grid(15x15) at f=2 has ~25.4k fault sets: beyond the default
   exhaustive budget, and its corner cuts hide from uniform sampling. *)
let grid_kernel = lazy (Kernel.make (Families.grid 15 15) ~t:1)

let test_finds_exhaustive_worst () =
  List.iter
    (fun (name, c, f) ->
      let routing = c.Construction.routing in
      let n = Graph.n (Routing.graph routing) in
      let truth = Tolerance.exhaustive routing ~f in
      let runs = 10 in
      let hits = ref 0 in
      for i = 1 to runs do
        let rng = Random.State.make [| 1234; i |] in
        let o = Attack.search ~rng ~pools:c.Construction.pools routing ~f in
        if Attack.score ~n o.Attack.worst >= Attack.score ~n truth.Tolerance.worst
        then incr hits
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s: %d/%d seeded runs reach the exhaustive worst" name
           !hits runs)
        true
        (!hits * 10 >= 9 * runs))
    (small_instances ())

let test_beats_random_on_large () =
  let c = Lazy.force grid_kernel in
  let routing = c.Construction.routing in
  let n = Graph.n (Routing.graph routing) in
  Alcotest.(check bool) "too large for exhaustive" true
    (Tolerance.count_subsets_up_to ~n ~k:2 > 20_000);
  let o =
    Attack.search
      ~rng:(Random.State.make [| 42; 3 |])
      ~pools:c.Construction.pools routing ~f:2
  in
  let rnd =
    Tolerance.random routing ~f:2 ~rng:(Random.State.make [| 42; 4 |]) ~samples:300
  in
  Alcotest.check distance "attack finds a disconnecting pair" Metrics.Infinite
    o.Attack.worst;
  Alcotest.(check bool)
    (Printf.sprintf "attack (%s) strictly beats 300 uniform samples (%s)"
       (Format.asprintf "%a" Metrics.pp_distance o.Attack.worst)
       (Format.asprintf "%a" Metrics.pp_distance rnd.Tolerance.worst))
    true
    (Attack.score ~n o.Attack.worst > Attack.score ~n rnd.Tolerance.worst)

let test_shrink_keeps_diameter_and_is_minimal () =
  let c = Kernel.make (Families.hypercube 3) ~t:2 in
  let routing = c.Construction.routing in
  let n = Graph.n (Routing.graph routing) in
  let compiled = Surviving.compile routing in
  let truth = Tolerance.exhaustive routing ~f:2 in
  let w, d, evals = Attack.shrink compiled ~witness:truth.Tolerance.witness in
  Alcotest.(check bool) "achieves at least the original diameter" true
    (Metrics.distance_le truth.Tolerance.worst d);
  Alcotest.(check bool) "spent evaluations" true (evals > 0);
  Alcotest.(check bool) "no larger than the original" true
    (List.length w <= List.length truth.Tolerance.witness);
  let check_minimal w d =
    List.iter
      (fun u ->
        let rest = List.filter (fun v -> v <> u) w in
        let d' =
          Surviving.diameter_compiled compiled ~faults:(Bitset.of_list n rest)
        in
        Alcotest.(check bool)
          (Printf.sprintf "dropping %d strictly lowers the diameter" u)
          true
          (not (Metrics.distance_le d d')))
      w
  in
  check_minimal w d;
  (* A witness padded with irrelevant vertices still shrinks to a
     locally minimal set. *)
  let padded = List.sort_uniq compare (truth.Tolerance.witness @ [ 0; 5 ]) in
  let w2, d2, _ = Attack.shrink compiled ~witness:padded in
  Alcotest.(check bool) "shrunk set is a subset of the input" true
    (List.for_all (fun v -> List.mem v padded) w2);
  check_minimal w2 d2

let test_deterministic_and_reproducible () =
  let c = Kernel.make (Families.ccc 3) ~t:2 in
  let routing = c.Construction.routing in
  let n = Graph.n (Routing.graph routing) in
  let run () =
    Attack.search
      ~rng:(Random.State.make [| 7 |])
      ~pools:c.Construction.pools routing ~f:2
  in
  let a = run () and b = run () in
  Alcotest.(check (list int)) "same witness" a.Attack.witness b.Attack.witness;
  Alcotest.check distance "same worst" a.Attack.worst b.Attack.worst;
  Alcotest.(check int) "same evals" a.Attack.evals b.Attack.evals;
  Alcotest.(check int) "same restarts" a.Attack.restarts_used b.Attack.restarts_used;
  (* The shrunk witness reproduces the reported diameter exactly. *)
  let compiled = Surviving.compile routing in
  let d =
    Surviving.diameter_compiled compiled ~faults:(Bitset.of_list n a.Attack.witness)
  in
  Alcotest.check distance "witness reproduces the reported worst" a.Attack.worst d;
  Alcotest.(check bool) "witness within the fault budget" true
    (List.length a.Attack.witness <= 2);
  Alcotest.(check bool) "search respects its budget (plus shrinking)" true
    (a.Attack.evals <= Attack.default_config.Attack.budget + 20)

let sample_entries () =
  [
    {
      Attack.Corpus.graph = "grid:15x15";
      strategy = "kernel";
      seed = 42;
      n = 225;
      f = 2;
      faults = [ 209; 223 ];
      edges = [];
      diameter = Metrics.Infinite;
      bound = None;
      found_by = "attack(seed=42)";
    };
    {
      Attack.Corpus.graph = "hypercube:3";
      strategy = "kernel";
      seed = 7;
      n = 8;
      f = 2;
      faults = [ 3; 6 ];
      edges = [];
      diameter = Metrics.Finite 4;
      bound = Some 4;
      found_by = "attack(seed=7)";
    };
  ]

let test_corpus_json_roundtrip () =
  let entries = sample_entries () in
  match Attack.Corpus.of_json (Attack.Corpus.to_json entries) with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check int) "same length" (List.length entries) (List.length back);
      Alcotest.(check bool) "identical entries" true (back = entries)

let test_corpus_add_dedupes () =
  let entries = sample_entries () in
  let e = List.hd entries in
  let _, added =
    Attack.Corpus.add entries { e with seed = 99; found_by = "other run" }
  in
  Alcotest.(check bool) "same witness not re-added" false added;
  let entries', added' = Attack.Corpus.add entries { e with faults = [ 1; 2 ] } in
  Alcotest.(check bool) "new witness added" true added';
  Alcotest.(check int) "appended" (List.length entries + 1) (List.length entries')

let test_corpus_replayable () =
  let entries = sample_entries () in
  Alcotest.(check (list (list int)))
    "matching n and f" [ [ 209; 223 ] ]
    (Attack.Corpus.replayable entries ~n:225 ~f:2);
  Alcotest.(check (list (list int)))
    "fault budget too small" []
    (Attack.Corpus.replayable entries ~n:225 ~f:1);
  Alcotest.(check (list (list int)))
    "other instance size" [ [ 3; 6 ] ]
    (Attack.Corpus.replayable entries ~n:8 ~f:3)

let test_corpus_files () =
  let dir = Filename.temp_file "ftr-corpus" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let file = Filename.concat dir "sample.json" in
  Attack.Corpus.save_file file (sample_entries ());
  (match Attack.Corpus.load_file file with
  | Error e -> Alcotest.fail e
  | Ok es -> Alcotest.(check bool) "file roundtrip" true (es = sample_entries ()));
  (match Attack.Corpus.load_dir dir with
  | [ (p, Ok es) ] ->
      Alcotest.(check string) "path" file p;
      Alcotest.(check bool) "dir roundtrip" true (es = sample_entries ())
  | _ -> Alcotest.fail "expected exactly one parsed corpus file");
  Alcotest.(check bool) "missing directory is empty" true
    (Attack.Corpus.load_dir (Filename.concat dir "nope") = []);
  Sys.remove file;
  Sys.rmdir dir

let test_corpus_rejects_garbage () =
  (match Attack.Corpus.of_json "{\"not\": \"an array\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "object accepted as corpus");
  match Attack.Corpus.of_json "[{\"graph\": \"x\"}]" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing fields accepted"

let link_entry () =
  {
    Attack.Corpus.graph = "cycle:12";
    strategy = "bipolar-uni";
    seed = 3;
    n = 12;
    f = 2;
    faults = [];
    edges = [ (3, 4); (9, 10) ];
    diameter = Metrics.Infinite;
    bound = None;
    found_by = "attack(seed=3,universe=links)";
  }

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  at 0

let test_corpus_v2_stamp_and_edges () =
  let entries = sample_entries () @ [ link_entry () ] in
  let json = Attack.Corpus.to_json entries in
  Alcotest.(check bool) "version stamped" true (contains_sub json "\"version\": 2");
  Alcotest.(check bool) "edge faults serialised" true
    (contains_sub json "\"edge_faults\"");
  match Attack.Corpus.of_json json with
  | Error e -> Alcotest.fail e
  | Ok back ->
      Alcotest.(check bool) "v2 roundtrip preserves edges" true (back = entries)

let test_corpus_accepts_legacy () =
  (* A version-less v1 entry, as written before the stamp existed. *)
  let legacy =
    {|[{"graph": "hypercube:3", "strategy": "kernel", "seed": 7, "n": 8,
        "f": 2, "faults": [3, 6], "diameter": 4, "bound": 4,
        "found_by": "attack(seed=7)"}]|}
  in
  match Attack.Corpus.of_json legacy with
  | Error e -> Alcotest.fail ("legacy entry rejected: " ^ e)
  | Ok [ e ] ->
      Alcotest.(check (list int)) "faults" [ 3; 6 ] e.Attack.Corpus.faults;
      Alcotest.(check (list (pair int int)))
        "legacy entries default to no link faults" [] e.Attack.Corpus.edges
  | Ok _ -> Alcotest.fail "expected exactly one entry"

let test_corpus_rejects_bad_version () =
  let with_version v =
    Printf.sprintf
      {|[{"version": %d, "graph": "hypercube:3", "strategy": "kernel",
          "seed": 7, "n": 8, "f": 2, "faults": [3, 6], "diameter": 4,
          "bound": 4, "found_by": "attack(seed=7)"}]|}
      v
  in
  List.iter
    (fun v ->
      match Attack.Corpus.of_json (with_version v) with
      | Error msg ->
          Alcotest.(check bool)
            (Printf.sprintf "version %d error names the version" v)
            true
            (contains_sub msg "unsupported corpus version")
      | Ok _ -> Alcotest.fail (Printf.sprintf "version %d accepted" v))
    [ 0; 3; 99 ]

let test_corpus_dedup_and_replayable_with_edges () =
  let e = link_entry () in
  let entries, added = Attack.Corpus.add (sample_entries ()) e in
  Alcotest.(check bool) "link witness added" true added;
  let _, again = Attack.Corpus.add entries { e with seed = 77 } in
  Alcotest.(check bool) "same link witness not re-added" false again;
  let _, other =
    Attack.Corpus.add entries { e with edges = [ (0, 1); (9, 10) ] }
  in
  Alcotest.(check bool) "different link set is a new witness" true other;
  (* replayable is node-only: link entries are skipped even when n/f fit *)
  Alcotest.(check (list (list int)))
    "link entries excluded from node replay" []
    (Attack.Corpus.replayable [ e ] ~n:12 ~f:2)

let test_search_mixed_reproducible () =
  let c = Kernel.make (Families.ccc 3) ~t:2 in
  let routing = c.Construction.routing in
  let run () =
    Attack.search_mixed
      ~rng:(Random.State.make [| 19 |])
      ~pools:c.Construction.pools ~universe:`Edges routing ~f:2
  in
  let a = run () and b = run () in
  Alcotest.(check (list (pair int int))) "same edge witness" a.Attack.m_edges
    b.Attack.m_edges;
  Alcotest.check distance "same worst" a.Attack.m_worst b.Attack.m_worst;
  Alcotest.(check int) "same evals" a.Attack.m_evals b.Attack.m_evals;
  Alcotest.(check (list int)) "edge universe leaves nodes alone" []
    a.Attack.m_nodes;
  Alcotest.(check bool) "witness within the fault budget" true
    (List.length a.Attack.m_edges <= 2);
  (* the link witness replays to the reported diameter *)
  let compiled = Surviving.compile routing in
  let ev = Surviving.evaluator compiled in
  let ids =
    List.filter_map (fun (u, v) -> Surviving.edge_id compiled u v) a.Attack.m_edges
  in
  Alcotest.(check int) "every witness pair is a graph edge"
    (List.length a.Attack.m_edges) (List.length ids);
  Surviving.set_mixed_faults ev ~nodes:[] ~edges:ids;
  Alcotest.check distance "witness reproduces the reported worst" a.Attack.m_worst
    (Surviving.evaluator_diameter ev)

let test_evaluate_replays_corpus () =
  let c = Lazy.force grid_kernel in
  let corpus =
    [
      {
        Attack.Corpus.graph = "grid:15x15";
        strategy = "kernel";
        seed = 42;
        n = 225;
        f = 2;
        faults = [ 209; 223 ];
        edges = [];
        diameter = Metrics.Infinite;
        bound = None;
        found_by = "seeded";
      };
    ]
  in
  let v =
    Tolerance.evaluate ~samples:10 ~attack_budget:0 ~corpus
      ~rng:(Random.State.make [| 5 |])
      c ~f:2
  in
  Alcotest.check distance "corpus witness replayed" Metrics.Infinite
    v.Tolerance.worst;
  Alcotest.(check (list int)) "witness is the stored one" [ 209; 223 ]
    v.Tolerance.witness

(* ---------------- sampled search at scale ---------------- *)

(* A star's hub is the only interesting fault; the sampled hill climb
   must find it from the endpoint-neighborhood pools and shrink the
   witness to exactly the hub. *)
let test_search_sampled_flags_star () =
  let n = 10 in
  let g =
    Ftr_graph.Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))
  in
  let r = Routing.of_compact g Routing.Bidirectional (Compact.bfs_tree g ~root:0) in
  let o =
    Attack.search_sampled
      ~rng:(Random.State.make [| 3 |])
      ~pools:[ [ 0 ] ] r ~f:2 ~bound:4 ~pairs:24
  in
  Alcotest.(check bool) "flagged" true (o.Attack.s_flagged > 0);
  Alcotest.check distance "worst infinite" Metrics.Infinite o.Attack.s_worst;
  Alcotest.(check bool) "hub in witness" true (List.mem 0 o.Attack.s_witness);
  Alcotest.(check bool) "probes accounted" true (o.Attack.s_probes > 0)

(* Outcomes are a function of (routing, config, seed), not of the
   domain schedule: jobs=1 and jobs=4 must agree field for field. *)
let test_search_sampled_jobs_independent () =
  let c = Kernel.make (Families.torus 4 4) ~t:3 in
  let run jobs =
    Attack.search_sampled ~jobs
      ~rng:(Random.State.make [| 17 |])
      c.Construction.routing ~f:2 ~bound:2 ~pairs:24
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check int) "same flag count" a.Attack.s_flagged b.Attack.s_flagged;
  Alcotest.check distance "same worst" a.Attack.s_worst b.Attack.s_worst;
  Alcotest.(check (list int)) "same witness" a.Attack.s_witness b.Attack.s_witness;
  Alcotest.(check int) "same probes" a.Attack.s_probes b.Attack.s_probes

let () =
  Alcotest.run "attack"
    [
      ( "search",
        [
          Alcotest.test_case "finds exhaustive worst (>=90% of seeds)" `Quick
            test_finds_exhaustive_worst;
          Alcotest.test_case "beats uniform random beyond exhaustive reach" `Quick
            test_beats_random_on_large;
          Alcotest.test_case "deterministic, reproducible witness" `Quick
            test_deterministic_and_reproducible;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "keeps diameter, locally minimal" `Quick
            test_shrink_keeps_diameter_and_is_minimal;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "json roundtrip" `Quick test_corpus_json_roundtrip;
          Alcotest.test_case "add dedupes" `Quick test_corpus_add_dedupes;
          Alcotest.test_case "replayable filter" `Quick test_corpus_replayable;
          Alcotest.test_case "save/load files" `Quick test_corpus_files;
          Alcotest.test_case "rejects garbage" `Quick test_corpus_rejects_garbage;
          Alcotest.test_case "v2 stamp and link faults" `Quick
            test_corpus_v2_stamp_and_edges;
          Alcotest.test_case "accepts legacy version-less entries" `Quick
            test_corpus_accepts_legacy;
          Alcotest.test_case "rejects unsupported versions" `Quick
            test_corpus_rejects_bad_version;
          Alcotest.test_case "link witnesses: dedup and replay filter" `Quick
            test_corpus_dedup_and_replayable_with_edges;
          Alcotest.test_case "mixed search reproducible, witness replays" `Quick
            test_search_mixed_reproducible;
          Alcotest.test_case "evaluate replays stored witnesses" `Quick
            test_evaluate_replays_corpus;
        ] );
      ( "sampled",
        [
          Alcotest.test_case "flags a star hub" `Quick
            test_search_sampled_flags_star;
          Alcotest.test_case "jobs-independent" `Quick
            test_search_sampled_jobs_independent;
        ] );
    ]
