open Ftr_graph

let test_root_ok () =
  Alcotest.(check bool) "cycle vertex" true (Two_trees.root_ok (Families.cycle 9) 0);
  Alcotest.(check bool) "triangle vertex" false (Two_trees.root_ok (Families.complete 3) 0);
  Alcotest.(check bool) "4-cycle vertex" false (Two_trees.root_ok (Families.cycle 4) 0);
  Alcotest.(check bool) "petersen (girth 5)" true (Two_trees.root_ok (Families.petersen ()) 0);
  Alcotest.(check bool) "hypercube (girth 4)" false (Two_trees.root_ok (Families.hypercube 3) 0)

let test_verify_on_cycle () =
  let g = Families.cycle 12 in
  Alcotest.(check bool) "antipodal roots" true (Two_trees.verify g 0 6);
  Alcotest.(check bool) "distance 4 fails (fringe overlap)" false (Two_trees.verify g 0 4);
  Alcotest.(check bool) "distance 5 ok" true (Two_trees.verify g 0 5);
  Alcotest.(check bool) "same root" false (Two_trees.verify g 0 0);
  Alcotest.(check bool) "adjacent" false (Two_trees.verify g 0 1)

let test_weak_vs_formal () =
  let g = Families.cycle 10 in
  (* dist(0,4) = 4: prose version accepts, formal rejects. *)
  Alcotest.(check bool) "weak accepts dist 4" true (Two_trees.holds_weak g 0 4);
  Alcotest.(check bool) "formal rejects dist 4" false (Two_trees.verify g 0 4);
  Alcotest.(check bool) "both accept dist 5" true
    (Two_trees.holds_weak g 0 5 && Two_trees.verify g 0 5)

let test_find () =
  (match Two_trees.find (Families.cycle 12) with
  | Some (r1, r2) -> Alcotest.(check bool) "verifies" true (Two_trees.verify (Families.cycle 12) r1 r2)
  | None -> Alcotest.fail "cycle 12 should have roots");
  Alcotest.(check bool) "petersen too small" true (Two_trees.find (Families.petersen ()) = None);
  Alcotest.(check bool) "hypercube has 4-cycles" true (Two_trees.find (Families.hypercube 4) = None);
  Alcotest.(check bool) "torus has 4-cycles" true (Two_trees.find (Families.torus 5 5) = None)

let test_find_ccc5 () =
  (* CCC(5) has girth 5 and diameter >= 5: roots must exist. *)
  let g = Families.ccc 5 in
  match Two_trees.find g with
  | Some (r1, r2) ->
      Alcotest.(check bool) "verifies" true (Two_trees.verify g r1 r2);
      Alcotest.(check bool) "far apart" true
        (match Traversal.distance g r1 r2 with Some d -> d >= 5 | None -> false)
  | None -> Alcotest.fail "ccc 5 should have two-trees roots"

let test_verify_disjointness_is_strict () =
  (* Star-of-paths: two roots whose fringes share one vertex. *)
  (*      0 - 1 - 2 - 3 - 4 - 5 - 6     plus  2 - 7 - 4          *)
  let g = Graph.of_edges ~n:8 [ (0,1); (1,2); (2,3); (3,4); (4,5); (5,6); (2,7); (7,4) ] in
  (* dist(1,5) = 4 via 2-7-4 and fringe(1) includes 3? No: fringe of
     1 is Gamma(0)+Gamma(2)-{1} = {3,7}; fringe of 5 is {3,7}: clash. *)
  Alcotest.(check bool) "shared fringe rejected" false (Two_trees.verify g 1 5)

let () =
  Alcotest.run "two_trees"
    [
      ( "two_trees",
        [
          Alcotest.test_case "root_ok" `Quick test_root_ok;
          Alcotest.test_case "verify on cycle" `Quick test_verify_on_cycle;
          Alcotest.test_case "weak vs formal" `Quick test_weak_vs_formal;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "find on ccc5" `Quick test_find_ccc5;
          Alcotest.test_case "strict disjointness" `Quick test_verify_disjointness_is_strict;
        ] );
    ]
