(* The serve layer: JSON dialect, wire protocol, write-ahead journal,
   admission control, the warm engine, the request core, and the
   SLO-gated soak — plus end-to-end checks that spawn the real
   `ftr serve` daemon over a Unix socket and exercise the documented
   exit codes through the real executable. *)

open Ftr_graph
open Ftr_core
module Serve = Ftr_serve
module Sjson = Serve.Sjson
module Wire = Serve.Wire
module Journal = Serve.Journal
module Admission = Serve.Admission
module Engine = Serve.Engine
module Server = Serve.Server
module Soak = Serve.Soak
module Chaos = Serve.Chaos
module Exit_code = Serve.Exit_code

(* ---------------- sjson ---------------- *)

let test_sjson_print () =
  let v =
    Sjson.Obj
      [
        ("ok", Sjson.Bool true);
        ("n", Sjson.Int (-3));
        ("p", Sjson.Float 1.5);
        ("s", Sjson.Str "a\"b\n");
        ("xs", Sjson.Arr [ Sjson.Int 0; Sjson.Null ]);
      ]
  in
  Alcotest.(check string) "one canonical line"
    {|{"ok":true,"n":-3,"p":1.5,"s":"a\"b\n","xs":[0,null]}|}
    (Sjson.to_string v)

let test_sjson_nonfinite_floats () =
  Alcotest.(check string) "nan is null" "null" (Sjson.to_string (Sjson.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Sjson.to_string (Sjson.Float Float.infinity))

let test_sjson_roundtrip () =
  let v =
    Sjson.Obj
      [
        ("a", Sjson.Arr [ Sjson.Int 1; Sjson.Float 2.25; Sjson.Str "x" ]);
        ("b", Sjson.Obj [ ("c", Sjson.Bool false); ("d", Sjson.Null) ]);
      ]
  in
  match Sjson.parse (Sjson.to_string v) with
  | Error e -> Alcotest.fail ("roundtrip parse failed: " ^ e)
  | Ok v' ->
      Alcotest.(check string) "print/parse/print fixpoint" (Sjson.to_string v)
        (Sjson.to_string v')

let test_sjson_parse_errors () =
  let bad s =
    match Sjson.parse s with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
  in
  bad "";
  bad "{";
  bad "tru";
  bad "{\"a\":1} trailing";
  bad "[1,]";
  bad "\"unterminated"

(* \u escapes are exactly four hex digits. The old decoder fed
   "0x" ^ hex to int_of_string_opt, whose OCaml-literal syntax also
   accepts underscores and a second 0x/0o/0b prefix — so junk like
   "\u00_a" decoded as 0xA instead of being rejected. *)
let test_sjson_unicode_escapes () =
  let ok wire expected =
    match Sjson.parse wire with
    | Ok (Sjson.Str s) -> Alcotest.(check string) wire expected s
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S parsed to a non-string" wire)
    | Error e -> Alcotest.failf "%S should parse: %s" wire e
  in
  let bad wire =
    match Sjson.parse wire with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" wire)
  in
  ok "\"\\u0041\"" "A";
  ok "\"\\u006a\"" "j";
  ok "\"\\u006A\"" "j";
  ok "\"\\u0000\"" "\000";
  (* non-ASCII degrades to '?' (documented: the wire is ASCII) *)
  ok "\"\\u20ac\"" "?";
  bad "\"\\u00_a\"";
  bad "\"\\u0x41\"";
  bad "\"\\u004\"";
  bad "\"\\u004g\"";
  bad "\"\\u 041\"";
  bad "\"\\u+041\"";
  bad "\"\\u-041\""

let test_sjson_accessors () =
  match Sjson.parse {|{"i":7,"f":2.5,"s":"hi","b":true,"l":[3,4]}|} with
  | Error e -> Alcotest.fail e
  | Ok v ->
      let get name = Option.get (Sjson.member name v) in
      Alcotest.(check (option int)) "int" (Some 7) (Sjson.to_int (get "i"));
      Alcotest.(check (option (float 1e-9))) "float" (Some 2.5)
        (Sjson.to_float (get "f"));
      Alcotest.(check (option (float 1e-9))) "int reads as float" (Some 7.0)
        (Sjson.to_float (get "i"));
      Alcotest.(check (option string)) "str" (Some "hi") (Sjson.to_str (get "s"));
      Alcotest.(check (option bool)) "bool" (Some true) (Sjson.to_bool (get "b"));
      Alcotest.(check (option (pair int int))) "int pair" (Some (3, 4))
        (Sjson.int_pair (get "l"));
      Alcotest.(check bool) "missing member" true (Sjson.member "zz" v = None);
      Alcotest.(check bool) "shape mismatch is None" true
        (Sjson.to_int (get "s") = None)

(* ---------------- wire ---------------- *)

let test_wire_roundtrip () =
  let reqs =
    [
      Wire.Route { src = 3; dst = 17 };
      Wire.Diameter;
      Wire.Fault (Wire.Fail_node 5);
      Wire.Fault (Wire.Recover_node 5);
      Wire.Fault (Wire.Fail_link (2, 9));
      Wire.Fault (Wire.Recover_link (2, 9));
      Wire.Fault (Wire.Degrade_link (2, 9, 3.5));
      (* a factor that exercises the exact float round-trip *)
      Wire.Fault (Wire.Degrade_link (0, 4, 1.0000000000000002));
      Wire.Fault (Wire.Restore_link (2, 9));
      Wire.Health;
      Wire.Ready;
      Wire.Stats;
      Wire.Drain;
    ]
  in
  List.iter
    (fun r ->
      let line = Wire.request_to_line r in
      match Wire.request_of_line line with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "roundtrip %s" line)
            true (r = r')
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" line e))
    reqs

let test_wire_rejects_garbage () =
  let bad line =
    match Wire.request_of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (Printf.sprintf "%S should be rejected" line)
  in
  bad "not json";
  bad {|{"op":"warp"}|};
  bad {|{"op":"route","src":1}|};
  bad {|{"op":"fault","action":"fail"}|};
  bad {|{"op":"fault","action":"explode","node":1}|};
  (* gray-failure deltas: link-only, factor finite and >= 1 *)
  bad {|{"op":"fault","action":"degrade","link":[1,2]}|};
  bad {|{"op":"fault","action":"degrade","link":[1,2],"factor":0.5}|};
  bad {|{"op":"fault","action":"degrade","node":1,"factor":2.0}|};
  bad {|{"op":"fault","action":"restore","node":1}|}

(* ---------------- exit codes ---------------- *)

let test_exit_codes () =
  Alcotest.(check int) "clean" 0 (Exit_code.to_int Exit_code.Clean);
  Alcotest.(check int) "breach" 1 (Exit_code.to_int Exit_code.Breach);
  Alcotest.(check int) "usage" 2 (Exit_code.to_int Exit_code.Usage);
  Alcotest.(check int) "infra" 3 (Exit_code.to_int Exit_code.Infra);
  Alcotest.(check string) "describe breach" "slo-breach"
    (Exit_code.describe Exit_code.Breach);
  Alcotest.(check bool) "infra beats breach" true
    (Exit_code.worst Exit_code.Breach Exit_code.Infra = Exit_code.Infra);
  Alcotest.(check bool) "breach beats clean" true
    (Exit_code.worst Exit_code.Clean Exit_code.Breach = Exit_code.Breach)

(* ---------------- journal ---------------- *)

let with_temp_file name f =
  (try Sys.remove name with Sys_error _ -> ());
  Fun.protect
    (fun () -> f name)
    ~finally:(fun () -> try Sys.remove name with Sys_error _ -> ())

let test_journal_roundtrip () =
  with_temp_file "t-journal-rt.journal" @@ fun path ->
  let events =
    [
      Wire.Fail_node 3;
      Wire.Fail_link (2, 5);
      Wire.Degrade_link (1, 4, 3.0625);
      (* a factor %.12g would mangle: must survive via %.17g *)
      Wire.Degrade_link (0, 1, 1.0000000000000002);
      Wire.Recover_node 3;
      Wire.Restore_link (1, 4);
      Wire.Recover_link (2, 5);
    ]
  in
  (match Journal.create path with
  | Error e -> Alcotest.fail e
  | Ok j ->
      List.iter (Journal.append j) events;
      Journal.close j);
  match Journal.load path with
  | Error e -> Alcotest.fail e
  | Ok loaded ->
      Alcotest.(check bool) "events in append order" true (loaded = events)

let test_journal_missing_is_empty () =
  match Journal.load "t-journal-never-created.journal" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "missing journal should be empty"
  | Error e -> Alcotest.fail e

let test_journal_rejects_foreign_file () =
  with_temp_file "t-journal-foreign.journal" @@ fun path ->
  let oc = open_out path in
  output_string oc "this is not a journal\n";
  close_out oc;
  (match Journal.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header should not load");
  match Journal.create path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header should not open for append"

let test_journal_rejects_bad_line () =
  with_temp_file "t-journal-badline.journal" @@ fun path ->
  let oc = open_out path in
  output_string oc (Journal.header ^ "\n");
  output_string oc "fail-node 1\n";
  output_string oc "explode 7\n";
  close_out oc;
  match Journal.load path with
  | Error e ->
      Alcotest.(check bool) "error names the line" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "malformed line should not load"

let test_journal_rejects_bad_degrade_factor () =
  with_temp_file "t-journal-badfactor.journal" @@ fun path ->
  let oc = open_out path in
  output_string oc (Journal.header ^ "\n");
  output_string oc "degrade-link 1 2 0.5\n";
  close_out oc;
  match Journal.load path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sub-1 degrade factor should not load"

(* ---------------- admission ---------------- *)

let test_admission_fifo_and_queue_shed () =
  let q = Admission.create { Admission.max_queue = 2; deadline = 0.0 } in
  Alcotest.(check bool) "a admitted" true (Admission.offer q ~now:0.0 "a");
  Alcotest.(check bool) "b admitted" true (Admission.offer q ~now:0.0 "b");
  Alcotest.(check bool) "c shed at budget" false (Admission.offer q ~now:0.0 "c");
  Alcotest.(check int) "depth" 2 (Admission.length q);
  Alcotest.(check bool) "fifo" true (Admission.take q ~now:1.0 = Some (`Serve "a"));
  Alcotest.(check bool) "fifo 2" true (Admission.take q ~now:1.0 = Some (`Serve "b"));
  Alcotest.(check bool) "empty" true (Admission.take q ~now:1.0 = None)

let test_admission_deadline_expiry () =
  let q = Admission.create { Admission.max_queue = 4; deadline = 1.0 } in
  ignore (Admission.offer q ~now:0.0 "old");
  ignore (Admission.offer q ~now:2.0 "fresh");
  Alcotest.(check bool) "out-waited its deadline" true
    (Admission.take q ~now:2.5 = Some (`Expired "old"));
  Alcotest.(check bool) "still within deadline" true
    (Admission.take q ~now:2.5 = Some (`Serve "fresh"))

let test_admission_expires_oldest_deadline_first () =
  (* The shed-ordering contract pinned in admission.mli: with the
     uniform config deadline, FIFO order IS oldest-deadline-first, so
     expiries must drain in arrival order before any fresh request is
     served. *)
  let q = Admission.create { Admission.max_queue = 4; deadline = 1.0 } in
  ignore (Admission.offer q ~now:0.0 "a");
  ignore (Admission.offer q ~now:0.2 "b");
  ignore (Admission.offer q ~now:2.0 "c");
  Alcotest.(check bool) "oldest deadline sheds first" true
    (Admission.take q ~now:2.5 = Some (`Expired "a"));
  Alcotest.(check bool) "next oldest second" true
    (Admission.take q ~now:2.5 = Some (`Expired "b"));
  Alcotest.(check bool) "fresh request served after the expiries" true
    (Admission.take q ~now:2.5 = Some (`Serve "c"))

let test_admission_rejects_bad_budget () =
  Alcotest.check_raises "zero budget"
    (Invalid_argument "Admission.create: max_queue <= 0")
    (fun () -> ignore (Admission.create { Admission.max_queue = 0; deadline = 0.0 }))

(* ---------------- engine ---------------- *)

let torus_engine () =
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  (c, Engine.create c.Construction.routing)

(* A deliberately threadbare routing on a cycle: only 0-1 is routed,
   so most pairs are disconnected in the route graph while the
   underlying graph stays connected — the detour regime. *)
let sparse_cycle_engine () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1 ]);
  Engine.create r

let test_engine_validate_and_apply () =
  let _, e = torus_engine () in
  Alcotest.(check bool) "in-range node" true
    (Engine.validate e (Wire.Fail_node 3) = Ok ());
  Alcotest.(check bool) "out-of-range node" true
    (Result.is_error (Engine.validate e (Wire.Fail_node 99)));
  Alcotest.(check bool) "non-edge link" true
    (Result.is_error (Engine.validate e (Wire.Fail_link (0, 13))));
  Alcotest.(check bool) "first fail changes state" true
    (Engine.apply e (Wire.Fail_node 3) = Ok true);
  Alcotest.(check bool) "repeat is an idempotent no-op" true
    (Engine.apply e (Wire.Fail_node 3) = Ok false);
  Alcotest.(check bool) "fault listed" true (Engine.node_faults e = [ 3 ]);
  Alcotest.(check bool) "recover changes state" true
    (Engine.apply e (Wire.Recover_node 3) = Ok true);
  Alcotest.(check bool) "clean again" true (Engine.node_faults e = [])

let test_engine_replay_digest () =
  let c, e1 = torus_engine () in
  let events =
    [
      Wire.Fail_node 2;
      Wire.Fail_link (0, 1);
      Wire.Fail_node 2;
      (* redundant: replay must tolerate it *)
      Wire.Recover_node 2;
      Wire.Fail_node 7;
    ]
  in
  List.iter (fun a -> ignore (Result.get_ok (Engine.apply e1 a))) events;
  let e2 = Engine.create c.Construction.routing in
  (match Engine.replay e2 events with
  | Error msg -> Alcotest.fail msg
  | Ok changed ->
      Alcotest.(check int) "state-changing events counted" 4 changed);
  Alcotest.(check string) "byte-identical fault state" (Engine.digest e1)
    (Engine.digest e2)

let test_engine_degrade_apply () =
  let _, e = torus_engine () in
  Alcotest.(check bool) "bad factor rejected" true
    (Result.is_error (Engine.validate e (Wire.Degrade_link (0, 1, 0.5))));
  Alcotest.(check bool) "non-edge rejected" true
    (Result.is_error (Engine.validate e (Wire.Degrade_link (0, 13, 2.0))));
  Alcotest.(check bool) "restore validates the link too" true
    (Result.is_error (Engine.validate e (Wire.Restore_link (0, 13))));
  let clean = Engine.digest e in
  Alcotest.(check bool) "restore of a healthy link is a no-op" true
    (Engine.apply e (Wire.Restore_link (0, 1)) = Ok false);
  Alcotest.(check bool) "first degrade changes state" true
    (Engine.apply e (Wire.Degrade_link (0, 1, 4.0)) = Ok true);
  Alcotest.(check bool) "same factor is an idempotent no-op" true
    (Engine.apply e (Wire.Degrade_link (0, 1, 4.0)) = Ok false);
  Alcotest.(check bool) "new factor changes state" true
    (Engine.apply e (Wire.Degrade_link (0, 1, 8.0)) = Ok true);
  Alcotest.(check bool) "inventory" true
    (Engine.degraded_links e = [ (0, 1, 8.0) ]);
  Alcotest.(check bool) "digest moved" true (Engine.digest e <> clean);
  Alcotest.(check bool) "restore changes state back" true
    (Engine.apply e (Wire.Restore_link (0, 1)) = Ok true);
  Alcotest.(check string) "digest byte-identical after restore" clean
    (Engine.digest e)

let test_engine_route_and_bound () =
  let _, e = torus_engine () in
  (match Engine.route e ~src:0 ~dst:12 with
  | Ok (Engine.Routed { degraded; routes; hops; waypoints }) ->
      Alcotest.(check bool) "not degraded without a bound" false degraded;
      Alcotest.(check int) "routes = waypoint gaps" routes
        (List.length waypoints - 1);
      Alcotest.(check bool) "hops cover the routes" true (hops >= routes)
  | Ok _ -> Alcotest.fail "expected a surviving route"
  | Error msg -> Alcotest.fail msg);
  (match Engine.route ~bound:0 e ~src:0 ~dst:12 with
  | Ok (Engine.Routed { degraded; _ }) ->
      Alcotest.(check bool) "flagged beyond an impossible bound" true degraded
  | Ok _ | Error _ -> Alcotest.fail "expected a (degraded) surviving route");
  Alcotest.(check bool) "out-of-range endpoint" true
    (Result.is_error (Engine.route e ~src:0 ~dst:99));
  ignore (Result.get_ok (Engine.apply e (Wire.Fail_node 12)));
  Alcotest.(check bool) "faulty endpoint" true
    (Result.is_error (Engine.route e ~src:0 ~dst:12))

let test_engine_detour_and_unreachable () =
  let e = sparse_cycle_engine () in
  (match Engine.route e ~src:0 ~dst:3 with
  | Ok (Engine.Detour { path; hops }) ->
      Alcotest.(check int) "shortest live detour" 3 hops;
      Alcotest.(check bool) "path endpoints" true
        (List.nth path 0 = 0 && List.nth path (List.length path - 1) = 3)
  | Ok _ -> Alcotest.fail "expected a detour (pair unrouted)"
  | Error msg -> Alcotest.fail msg);
  ignore (Result.get_ok (Engine.apply e (Wire.Fail_node 1)));
  ignore (Result.get_ok (Engine.apply e (Wire.Fail_node 5)));
  match Engine.route e ~src:0 ~dst:3 with
  | Ok Engine.Unreachable -> ()
  | Ok _ -> Alcotest.fail "0 is cut off: expected unreachable"
  | Error msg -> Alcotest.fail msg

(* ---------------- server request core ---------------- *)

let cycle_server ?journal ?clock ?(max_queue = 8) ?(deadline = 0.0) () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  let engine = Engine.create r in
  Server.create ?clock ?journal
    { Server.max_queue; deadline; bound = None }
    engine

let field name json =
  match Sjson.member name json with
  | Some v -> v
  | None -> Alcotest.fail (Printf.sprintf "response lacks %S" name)

let is_ok json = Sjson.to_bool (field "ok" json) = Some true

let test_server_handle_probes () =
  let srv = cycle_server () in
  let health = Server.handle srv Wire.Health in
  Alcotest.(check bool) "health ok" true (is_ok health);
  Alcotest.(check (option bool)) "not draining" (Some false)
    (Sjson.to_bool (field "draining" health));
  let ready = Server.handle srv Wire.Ready in
  Alcotest.(check (option bool)) "ready" (Some true)
    (Sjson.to_bool (field "ready" ready));
  Server.request_drain srv;
  let ready = Server.handle srv Wire.Ready in
  Alcotest.(check (option bool)) "not ready while draining" (Some false)
    (Sjson.to_bool (field "ready" ready))

let test_server_handle_route_and_stats () =
  let srv = cycle_server () in
  let resp = Server.handle srv (Wire.Route { src = 0; dst = 2 }) in
  Alcotest.(check bool) "route ok" true (is_ok resp);
  Alcotest.(check (option string)) "mode" (Some "routed")
    (Sjson.to_str (field "mode" resp));
  Alcotest.(check bool) "service latency reported" true
    (match Sjson.to_float (field "service_ms" resp) with
    | Some ms -> ms >= 0.0
    | None -> false);
  let stats = Server.handle srv Wire.Stats in
  Alcotest.(check (option int)) "one query counted" (Some 1)
    (Sjson.to_int (field "queries" stats));
  Alcotest.(check bool) "stats carry the fault digest" true
    (Sjson.to_str (field "digest" stats) <> None)

let test_server_fault_is_write_ahead () =
  with_temp_file "t-server-wa.journal" @@ fun path ->
  let journal = Result.get_ok (Journal.create path) in
  let srv = cycle_server ~journal () in
  let resp = Server.handle srv (Wire.Fault (Wire.Fail_node 4)) in
  Alcotest.(check bool) "delta accepted" true (is_ok resp);
  Alcotest.(check (option bool)) "state changed" (Some true)
    (Sjson.to_bool (field "applied" resp));
  (* The event is on disk (fsynced) even though the daemon is alive:
     a crash right now would replay to the same digest. *)
  (match Journal.load path with
  | Ok [ Wire.Fail_node 4 ] -> ()
  | Ok _ -> Alcotest.fail "journal should hold exactly the applied delta"
  | Error e -> Alcotest.fail e);
  let rejected = Server.handle srv (Wire.Fault (Wire.Fail_node 99)) in
  Alcotest.(check bool) "invalid delta rejected" false (is_ok rejected);
  match Journal.load path with
  | Ok [ Wire.Fail_node 4 ] -> ()
  | Ok _ -> Alcotest.fail "rejected delta must never reach the journal"
  | Error e -> Alcotest.fail e

let test_server_sheds_at_queue_budget () =
  let now = ref 0.0 in
  let srv = cycle_server ~clock:(fun () -> !now) ~max_queue:1 () in
  let responses = ref [] in
  let capture s = responses := s :: !responses in
  Server.submit srv (Wire.Route { src = 0; dst = 2 }) capture;
  Server.submit srv (Wire.Route { src = 0; dst = 3 }) capture;
  (* the second submission was shed immediately, before any pump *)
  Alcotest.(check int) "explicit shed response" 1 (List.length !responses);
  Alcotest.(check bool) "shed flag set" true
    (match Sjson.parse (List.hd !responses) with
    | Ok json -> Sjson.to_bool (field "shed" json) = Some true
    | Error _ -> false);
  Server.pump srv;
  Alcotest.(check int) "queued request answered on pump" 2
    (List.length !responses);
  Alcotest.(check int) "shed counted" 1 (Server.shed srv)

let test_server_expires_stale_requests () =
  let now = ref 0.0 in
  let srv = cycle_server ~clock:(fun () -> !now) ~deadline:1.0 () in
  let response = ref None in
  Server.submit srv (Wire.Route { src = 0; dst = 2 }) (fun s -> response := Some s);
  now := 5.0;
  Server.pump srv;
  match !response with
  | None -> Alcotest.fail "expired request must still be answered"
  | Some line ->
      Alcotest.(check bool) "answered as shed, not served late" true
        (match Sjson.parse line with
        | Ok json ->
            Sjson.to_bool (field "shed" json) = Some true && not (is_ok json)
        | Error _ -> false)

let test_server_health_reports_shed_and_degraded () =
  let srv = cycle_server ~max_queue:1 () in
  let health = Server.handle srv Wire.Health in
  Alcotest.(check (option int)) "shed starts at 0" (Some 0)
    (Sjson.to_int (field "shed" health));
  (match field "degraded_links" health with
  | Sjson.Arr [] -> ()
  | _ -> Alcotest.fail "healthy daemon advertises no degraded links");
  (* overflow the queue so one request sheds, and slow one link *)
  Server.submit srv (Wire.Route { src = 0; dst = 2 }) ignore;
  Server.submit srv (Wire.Route { src = 0; dst = 3 }) ignore;
  Server.pump srv;
  ignore (Server.handle srv (Wire.Fault (Wire.Degrade_link (0, 1, 2.5))));
  let health = Server.handle srv Wire.Health in
  Alcotest.(check (option int)) "shed count surfaced" (Some 1)
    (Sjson.to_int (field "shed" health));
  match field "degraded_links" health with
  | Sjson.Arr [ Sjson.Arr [ Sjson.Int 0; Sjson.Int 1; Sjson.Float 2.5 ] ] -> ()
  | _ -> Alcotest.fail "degraded link inventory missing from health"

let test_server_drain_refuses_new_work () =
  let srv = cycle_server () in
  let drained = Server.handle srv Wire.Drain in
  Alcotest.(check bool) "drain acknowledged" true (is_ok drained);
  Alcotest.(check bool) "draining" true (Server.draining srv);
  let response = ref None in
  Server.submit srv (Wire.Route { src = 0; dst = 2 }) (fun s -> response := Some s);
  match !response with
  | Some line ->
      Alcotest.(check bool) "refused with the draining reason" true
        (match Sjson.parse line with
        | Ok json -> Sjson.to_str (field "error" json) = Some "draining"
        | Error _ -> false)
  | None -> Alcotest.fail "draining daemon must still answer"

(* ---------------- soak ---------------- *)

let torus_build ~graph:_ ~strategy:_ ~seed:_ =
  Ok (Kernel.make (Families.torus 5 5) ~t:3)

let entry ?(n = 25) faults edges =
  {
    Attack.Corpus.graph = "torus:5x5";
    strategy = "kernel";
    seed = 1;
    n;
    f = List.length faults + List.length edges;
    faults;
    edges;
    diameter = Metrics.Finite 6;
    bound = None;
    found_by = "test";
  }

let soak_config =
  {
    Soak.queries = 4;
    slo_p99_ms = 60000.0;
    seed = 7;
    jobs = None;
    certify = false;
    journal_dir = ".";
    gray_factor = None;
  }

let test_soak_clean_run () =
  let entries = [ entry [ 7 ] []; entry [ 3 ] [ (0, 1) ] ] in
  let outcome = Soak.run ~build:torus_build ~entries soak_config in
  Alcotest.(check bool) "clean verdict" true (outcome.Soak.exit = Exit_code.Clean);
  Alcotest.(check int) "no dropped in-budget queries" 0
    outcome.Soak.dropped_in_budget;
  match outcome.Soak.reports with
  | [ r ] ->
      Alcotest.(check int) "two waves" 2 r.Soak.waves;
      Alcotest.(check string) "grouped label" "torus:5x5/kernel seed=1"
        r.Soak.label;
      (* baseline + (during + recovered) per wave *)
      Alcotest.(check int) "query count" (4 * 5) r.Soak.queries;
      Alcotest.(check bool) "kill/restart replays to the same digest" true
        r.Soak.journal_digest_ok;
      Alcotest.(check bool) "no violations" true (r.Soak.violations = []);
      Alcotest.(check bool) "latencies measured" true (r.Soak.p99_ms <> None)
  | rs -> Alcotest.fail (Printf.sprintf "expected one report, got %d" (List.length rs))

let test_soak_stale_entry_is_infra () =
  let outcome =
    Soak.run ~build:torus_build ~entries:[ entry ~n:999 [ 7 ] [] ] soak_config
  in
  Alcotest.(check bool) "infra verdict" true (outcome.Soak.exit = Exit_code.Infra);
  match outcome.Soak.reports with
  | [ r ] -> Alcotest.(check bool) "report says why" true (r.Soak.infra <> None)
  | _ -> Alcotest.fail "expected one report"

let test_soak_build_failure_is_infra () =
  let build ~graph:_ ~strategy:_ ~seed:_ = Error "no such strategy" in
  let outcome = Soak.run ~build ~entries:[ entry [ 7 ] [] ] soak_config in
  Alcotest.(check bool) "infra verdict" true (outcome.Soak.exit = Exit_code.Infra)

let test_soak_gray_wave () =
  let cfg = { soak_config with Soak.gray_factor = Some 6.0 } in
  let outcome = Soak.run ~build:torus_build ~entries:[ entry [ 7 ] [] ] cfg in
  Alcotest.(check bool) "gray failures never breach the contract" true
    (outcome.Soak.exit = Exit_code.Clean);
  (match outcome.Soak.reports with
  | [ r ] ->
      (* baseline + gray wave + (during + recovered) for the one wave *)
      Alcotest.(check int) "extra in-budget phase under gray load" (4 * 4)
        r.Soak.queries;
      Alcotest.(check bool) "no violations" true (r.Soak.violations = []);
      Alcotest.(check bool) "digest restored after the wave" true
        r.Soak.journal_digest_ok
  | rs ->
      Alcotest.fail (Printf.sprintf "expected one report, got %d" (List.length rs)));
  let json = Soak.to_json cfg outcome in
  match Sjson.member "config" json with
  | Some cfg_json ->
      Alcotest.(check bool) "gray factor echoed" true
        (Sjson.to_float (field "gray_factor" cfg_json) = Some 6.0)
  | None -> Alcotest.fail "artifact lacks its config echo"

let test_soak_json_artifact () =
  let outcome =
    Soak.run ~build:torus_build ~entries:[ entry [ 7 ] [] ] soak_config
  in
  let json = Soak.to_json soak_config outcome in
  Alcotest.(check (option string)) "versioned" (Some "ftr-slo/1")
    (Option.bind (Sjson.member "version" json) Sjson.to_str);
  Alcotest.(check (option string)) "verdict embedded" (Some "ok")
    (Option.bind (Sjson.member "exit" json) Sjson.to_str);
  match Sjson.parse (Sjson.to_string json) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("artifact does not re-parse: " ^ e)

(* ---------------- chaos ---------------- *)

let chaos_config =
  {
    Chaos.queries = 12;
    burst = 20;
    max_queue = 8;
    deadline_ticks = 16.0;
    gray_factor = 4.0;
    radius = 1;
    zipf_s = 1.0;
    (* wall-clock gate parked: unit tests must not be timing-sensitive *)
    slo_p99_ms = 60000.0;
    min_delivery = 0.2;
    seed = 5;
    jobs = None;
    certify = false;
    journal_dir = ".";
  }

let test_chaos_clean_run () =
  with_temp_file "t-chaos.journal" @@ fun _ ->
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  let o = Chaos.run ~label:"t-chaos" c chaos_config in
  Alcotest.(check bool) "clean verdict" true (o.Chaos.exit = Exit_code.Clean);
  Alcotest.(check int) "four recorded beats" 4 (List.length o.Chaos.phases);
  Alcotest.(check bool) "no violations" true (o.Chaos.violations = []);
  Alcotest.(check bool) "digest converged" true o.Chaos.digest_converged;
  Alcotest.(check bool) "journal replay byte-identical" true
    o.Chaos.journal_digest_ok;
  (* burst 20 against a queue of 8 must shed *)
  Alcotest.(check bool) "flash crowd shed" true (o.Chaos.shed > 0);
  Alcotest.(check bool) "every request accounted" true
    (o.Chaos.total_requests
    = List.fold_left (fun a (p : Chaos.phase) -> a + p.requests) 0 o.Chaos.phases);
  let gray = List.find (fun (p : Chaos.phase) -> p.name = "gray") o.Chaos.phases in
  Alcotest.(check int) "gray wave slows, never cuts" gray.Chaos.requests
    gray.Chaos.delivered

let test_chaos_artifact_deterministic () =
  with_temp_file "t-chaos-det.journal" @@ fun _ ->
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  let o1 = Chaos.run ~label:"t-chaos-det" c chaos_config in
  let o2 = Chaos.run ~label:"t-chaos-det" c chaos_config in
  let s1 = Sjson.to_string (Chaos.to_json chaos_config o1) in
  let s2 = Sjson.to_string (Chaos.to_json chaos_config o2) in
  Alcotest.(check string) "byte-identical artifacts" s1 s2;
  (* the certify pre-pass must not perturb the artifact either *)
  let cfg = { chaos_config with Chaos.certify = true; jobs = Some 2 } in
  let o3 = Chaos.run ~label:"t-chaos-det" c cfg in
  let json = Chaos.to_json cfg o3 in
  Alcotest.(check (option string)) "versioned" (Some "ftr-chaos/1")
    (Option.bind (Sjson.member "version" json) Sjson.to_str);
  Alcotest.(check bool) "certified claim echoed" true (o3.Chaos.certified <> None);
  Alcotest.(check bool) "phases identical with certify on" true
    (o3.Chaos.phases = o1.Chaos.phases)

let test_chaos_bad_journal_dir_is_infra () =
  let c = Kernel.make (Families.torus 4 4) ~t:3 in
  let cfg = { chaos_config with Chaos.journal_dir = "t-no-such-dir-xyz" } in
  let o = Chaos.run ~label:"t-chaos-infra" c cfg in
  Alcotest.(check bool) "infra verdict" true (o.Chaos.exit = Exit_code.Infra);
  Alcotest.(check bool) "reason reported" true (o.Chaos.infra <> None)

(* ---------------- end-to-end: the real daemon ---------------- *)

(* `dune runtest` runs us in _build/default/test; `dune exec` from the
   project root. Find the freshly built CLI either way. *)
let exe =
  if Sys.file_exists "../bin/ftr.exe" then "../bin/ftr.exe"
  else "_build/default/bin/ftr.exe"

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | l -> go (l :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let spawn_daemon ~socket ~journal =
  (try Sys.remove socket with Sys_error _ -> ());
  (try Sys.remove journal with Sys_error _ -> ());
  let null = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process exe
      [| exe; "serve"; "torus:5x5"; "--socket"; socket; "--journal"; journal |]
      Unix.stdin null null
  in
  Unix.close null;
  (* wait for the socket to come up *)
  let rec wait tries =
    if tries = 0 then begin
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid);
      Alcotest.fail "daemon never bound its socket"
    end
    else if Sys.file_exists socket then ()
    else begin
      Unix.sleepf 0.05;
      wait (tries - 1)
    end
  in
  wait 200;
  pid

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0
   with Unix.Unix_error _ -> ());
  fd

let wait_exit pid =
  let rec go tries =
    match Unix.waitpid [ Unix.WNOHANG ] pid with
    | 0, _ when tries > 0 ->
        Unix.sleepf 0.05;
        go (tries - 1)
    | 0, _ ->
        Unix.kill pid Sys.sigkill;
        ignore (Unix.waitpid [] pid);
        Alcotest.fail "daemon did not exit"
    | _, status -> status
  in
  go 200

let test_daemon_end_to_end () =
  let socket = "t-serve-e2e.sock" and journal = "t-serve-e2e.journal" in
  with_temp_file journal @@ fun journal ->
  let pid = spawn_daemon ~socket ~journal in
  let fd = connect socket in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let ask req =
    output_string oc (Wire.request_to_line req ^ "\n");
    flush oc;
    match Sjson.parse (input_line ic) with
    | Ok json -> json
    | Error e -> Alcotest.fail ("unparseable response: " ^ e)
  in
  Alcotest.(check bool) "health" true (is_ok (ask Wire.Health));
  let fault = ask (Wire.Fault (Wire.Fail_node 7)) in
  Alcotest.(check bool) "fault applied" true (is_ok fault);
  Alcotest.(check (option bool)) "state changed" (Some true)
    (Sjson.to_bool (field "applied" fault));
  let route = ask (Wire.Route { src = 0; dst = 12 }) in
  Alcotest.(check bool) "routes around the failed node" true (is_ok route);
  Alcotest.(check bool) "route avoids the fault" true
    (match Sjson.to_list (field "path" route) with
    | Some path -> not (List.mem (Sjson.Int 7) path)
    | None -> false);
  let health = ask Wire.Health in
  Alcotest.(check bool) "fault visible in health" true
    (Sjson.to_list (field "node_faults" health) = Some [ Sjson.Int 7 ]);
  Alcotest.(check bool) "drain accepted" true (is_ok (ask Wire.Drain));
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (match wait_exit pid with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.fail (Printf.sprintf "drain exit code %d" c)
  | _ -> Alcotest.fail "daemon killed by signal");
  Alcotest.(check bool) "socket unlinked on exit" false (Sys.file_exists socket);
  Alcotest.(check bool) "journal holds the fault history" true
    (read_lines journal = [ Journal.header; "fail-node 7" ])

let test_daemon_sigterm_drains () =
  let socket = "t-serve-term.sock" and journal = "t-serve-term.journal" in
  with_temp_file journal @@ fun journal ->
  let pid = spawn_daemon ~socket ~journal in
  Unix.kill pid Sys.sigterm;
  match wait_exit pid with
  | Unix.WEXITED 0 ->
      Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)
  | Unix.WEXITED c -> Alcotest.fail (Printf.sprintf "SIGTERM exit code %d" c)
  | _ -> Alcotest.fail "SIGTERM must drain, not kill"

(* The documented exit-code contract, through the real executable:
   2 for caller error, 3 for broken environment, 0 for a no-op run. *)
let run_quiet args = Sys.command (exe ^ " " ^ args ^ " >/dev/null 2>&1")

let test_cli_exit_codes () =
  Alcotest.(check int) "serve without a spec is usage" 2
    (run_quiet "serve --socket t-none.sock");
  Alcotest.(check int) "bad graph spec is infra" 3
    (run_quiet "serve bogus-spec --socket t-none.sock");
  Alcotest.(check int) "soak --messages=0 is usage" 2
    (run_quiet "soak --messages=0");
  Alcotest.(check int) "slo --queries=0 is usage" 2
    (run_quiet "serve --slo --queries=0");
  Alcotest.(check int) "empty corpus is clean" 0
    (run_quiet "serve --slo --corpus t-no-such-dir");
  Alcotest.(check int) "query with nothing to send is usage" 2
    (run_quiet "query --socket t-none.sock");
  Alcotest.(check int) "query against a dead socket is infra" 3
    (run_quiet "query --socket t-none.sock health");
  Alcotest.(check int) "query negative retries is usage" 2
    (run_quiet "query --socket t-none.sock --retries=-1 health");
  Alcotest.(check int) "chaos sub-1 gray factor is usage" 2
    (run_quiet "chaos torus:4x4 --gray-factor 0.5");
  Alcotest.(check int) "chaos bad min-delivery is usage" 2
    (run_quiet "chaos torus:4x4 --min-delivery 1.5");
  Alcotest.(check int) "serve --slo sub-1 gray factor is usage" 2
    (run_quiet "serve --slo --gray-factor 0.5")

let test_cli_chaos_smoke () =
  Alcotest.(check int) "short chaos scenario is clean" 0
    (run_quiet
       "chaos torus:4x4 --queries 5 --burst 10 --max-queue 4 --seed 3 \
        --journal-dir .")

let () =
  Alcotest.run "serve"
    [
      ( "sjson",
        [
          Alcotest.test_case "canonical print" `Quick test_sjson_print;
          Alcotest.test_case "non-finite floats" `Quick test_sjson_nonfinite_floats;
          Alcotest.test_case "roundtrip" `Quick test_sjson_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_sjson_parse_errors;
          Alcotest.test_case "unicode escapes" `Quick test_sjson_unicode_escapes;
          Alcotest.test_case "accessors" `Quick test_sjson_accessors;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_wire_rejects_garbage;
        ] );
      ("exit codes", [ Alcotest.test_case "contract" `Quick test_exit_codes ]);
      ( "journal",
        [
          Alcotest.test_case "roundtrip" `Quick test_journal_roundtrip;
          Alcotest.test_case "missing file is empty" `Quick
            test_journal_missing_is_empty;
          Alcotest.test_case "rejects a foreign file" `Quick
            test_journal_rejects_foreign_file;
          Alcotest.test_case "rejects a bad line" `Quick
            test_journal_rejects_bad_line;
          Alcotest.test_case "rejects a bad degrade factor" `Quick
            test_journal_rejects_bad_degrade_factor;
        ] );
      ( "admission",
        [
          Alcotest.test_case "fifo + queue shed" `Quick
            test_admission_fifo_and_queue_shed;
          Alcotest.test_case "deadline expiry" `Quick test_admission_deadline_expiry;
          Alcotest.test_case "expiries drain oldest-deadline first" `Quick
            test_admission_expires_oldest_deadline_first;
          Alcotest.test_case "rejects a bad budget" `Quick
            test_admission_rejects_bad_budget;
        ] );
      ( "engine",
        [
          Alcotest.test_case "validate/apply idempotence" `Quick
            test_engine_validate_and_apply;
          Alcotest.test_case "replay lands on the same digest" `Quick
            test_engine_replay_digest;
          Alcotest.test_case "gray degrade apply/no-op" `Quick
            test_engine_degrade_apply;
          Alcotest.test_case "route + degraded flag" `Quick
            test_engine_route_and_bound;
          Alcotest.test_case "detour and unreachable" `Quick
            test_engine_detour_and_unreachable;
        ] );
      ( "server",
        [
          Alcotest.test_case "probes" `Quick test_server_handle_probes;
          Alcotest.test_case "route + stats" `Quick
            test_server_handle_route_and_stats;
          Alcotest.test_case "write-ahead journal" `Quick
            test_server_fault_is_write_ahead;
          Alcotest.test_case "sheds at queue budget" `Quick
            test_server_sheds_at_queue_budget;
          Alcotest.test_case "expires stale requests" `Quick
            test_server_expires_stale_requests;
          Alcotest.test_case "drain refuses new work" `Quick
            test_server_drain_refuses_new_work;
          Alcotest.test_case "health reports shed + degraded links" `Quick
            test_server_health_reports_shed_and_degraded;
        ] );
      ( "soak",
        [
          Alcotest.test_case "clean run" `Quick test_soak_clean_run;
          Alcotest.test_case "stale entry is infra" `Quick
            test_soak_stale_entry_is_infra;
          Alcotest.test_case "build failure is infra" `Quick
            test_soak_build_failure_is_infra;
          Alcotest.test_case "slo.json artifact" `Quick test_soak_json_artifact;
          Alcotest.test_case "gray wave holds the contract" `Quick
            test_soak_gray_wave;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "clean scenario" `Quick test_chaos_clean_run;
          Alcotest.test_case "deterministic artifact" `Quick
            test_chaos_artifact_deterministic;
          Alcotest.test_case "bad journal dir is infra" `Quick
            test_chaos_bad_journal_dir_is_infra;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "daemon serves and drains" `Quick
            test_daemon_end_to_end;
          Alcotest.test_case "SIGTERM drains" `Quick test_daemon_sigterm_drains;
          Alcotest.test_case "exit codes" `Quick test_cli_exit_codes;
          Alcotest.test_case "chaos smoke" `Quick test_cli_chaos_smoke;
        ] );
    ]
