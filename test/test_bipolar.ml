open Ftr_graph
open Ftr_core

let test_uni_structure () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional g ~t:1 in
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ());
  Alcotest.(check int) "claim bound" 4
    (List.hd c.Construction.claims).Construction.diameter_bound;
  (* concentrator is Gamma(r1) + Gamma(r2): 4 vertices on a cycle *)
  Alcotest.(check int) "concentrator" 4 (List.length c.Construction.concentrator)

let test_bi_structure () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_bidirectional g ~t:1 in
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ());
  Alcotest.(check int) "claim bound" 5
    (List.hd c.Construction.claims).Construction.diameter_bound

let test_uni_exhaustive () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional g ~t:1 in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 4" true (Tolerance.respects v ~bound:4)

let test_bi_exhaustive () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_bidirectional g ~t:1 in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 5" true (Tolerance.respects v ~bound:5)

let test_ccc5_pairs () =
  (* t = 2 on CCC(5): check all pairs drawn from the adversarial pools
     plus a random sample rather than the full C(160,2) space. *)
  let g = Families.ccc 5 in
  let c = Bipolar.make_unidirectional g ~t:2 in
  let v = Tolerance.adversarial c.Construction.routing ~f:2 ~pools:c.Construction.pools in
  Alcotest.(check bool) "pools within 4" true (Tolerance.respects v ~bound:4);
  let rng = Random.State.make [| 9 |] in
  let vr = Tolerance.random c.Construction.routing ~f:2 ~rng ~samples:100 in
  Alcotest.(check bool) "random within 4" true (Tolerance.respects vr ~bound:4)

let test_explicit_roots_validated () =
  let g = Families.cycle 12 in
  Alcotest.check_raises "bad roots"
    (Invalid_argument "Bipolar: supplied roots fail the two-trees property") (fun () ->
      ignore (Bipolar.make_unidirectional ~roots:(0, 2) g ~t:1))

let test_no_roots_rejected () =
  let g = Families.hypercube 3 in
  Alcotest.check_raises "no two-trees"
    (Invalid_argument "Bipolar: graph lacks the two-trees property") (fun () ->
      ignore (Bipolar.make_unidirectional g ~t:2))

let test_uni_covers_m1_from_everywhere () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional ~roots:(0, 6) g ~t:1 in
  let r = c.Construction.routing in
  let m1 = Array.to_list (Graph.neighbors g 0) in
  Graph.iter_vertices
    (fun x ->
      if not (List.mem x m1) then
        Alcotest.(check bool)
          (Printf.sprintf "%d routes into M1" x)
          true
          (List.exists (fun y -> Routing.mem r x y) m1))
    g

let test_uni_property_bpol3 () =
  (* Property B-POL 3: every node outside M has an in-neighbor in M in
     the fault-free surviving graph. *)
  let g = Families.cycle 12 in
  let c = Bipolar.make_unidirectional ~roots:(0, 6) g ~t:1 in
  let m = c.Construction.concentrator in
  let faults = Bitset.create 12 in
  let dg = Surviving.graph c.Construction.routing ~faults in
  Graph.iter_vertices
    (fun x ->
      if not (List.mem x m) then
        Alcotest.(check bool)
          (Printf.sprintf "M -> %d" x)
          true
          (List.exists (fun y -> Digraph.mem_arc dg y x) m))
    g

let test_bi_symmetric_surviving () =
  let g = Families.cycle 12 in
  let c = Bipolar.make_bidirectional g ~t:1 in
  let dg = Surviving.graph c.Construction.routing ~faults:(Bitset.create 12) in
  Alcotest.(check bool) "symmetric" true (Digraph.is_symmetric dg)

let () =
  Alcotest.run "bipolar"
    [
      ( "bipolar",
        [
          Alcotest.test_case "uni structure" `Quick test_uni_structure;
          Alcotest.test_case "bi structure" `Quick test_bi_structure;
          Alcotest.test_case "uni exhaustive" `Quick test_uni_exhaustive;
          Alcotest.test_case "bi exhaustive" `Quick test_bi_exhaustive;
          Alcotest.test_case "ccc5 adversarial" `Slow test_ccc5_pairs;
          Alcotest.test_case "explicit roots validated" `Quick test_explicit_roots_validated;
          Alcotest.test_case "no roots rejected" `Quick test_no_roots_rejected;
          Alcotest.test_case "covers M1" `Quick test_uni_covers_m1_from_everywhere;
          Alcotest.test_case "Property B-POL 3" `Quick test_uni_property_bpol3;
          Alcotest.test_case "bi symmetric" `Quick test_bi_symmetric_surviving;
        ] );
    ]
