open Ftr_graph

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ]

let test_of_edges_basic () =
  let g = triangle () in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 3 (Graph.m g);
  Alcotest.(check bool) "edge 0-1" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "edge 1-0" true (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "no self edge" false (Graph.mem_edge g 0 0)

let test_dedup_and_self_loops () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (2, 2) ] in
  Alcotest.(check int) "m" 1 (Graph.m g);
  Alcotest.(check int) "deg 2" 0 (Graph.degree g 2)

let test_out_of_range () =
  Alcotest.check_raises "bad vertex" (Invalid_argument "Graph: vertex 3 out of [0,3)")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 3) ]))

let test_neighbors_sorted () =
  let g = Graph.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (Graph.neighbors g 2)

let test_degrees () =
  let g = Families.star 5 in
  Alcotest.(check int) "hub degree" 4 (Graph.degree g 0);
  Alcotest.(check int) "max" 4 (Graph.max_degree g);
  Alcotest.(check int) "min" 1 (Graph.min_degree g)

let test_edges_listing () =
  let g = triangle () in
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (0, 2); (1, 2) ] (Graph.edges g)

let test_iter_edges_once () =
  let g = Families.cycle 6 in
  let count = ref 0 in
  Graph.iter_edges (fun _ _ -> incr count) g;
  Alcotest.(check int) "each edge once" 6 !count

let test_builder () =
  let b = Graph.Builder.create 4 in
  Graph.Builder.add_edge b 0 1;
  Graph.Builder.add_edge b 1 0;
  Graph.Builder.add_edge b 2 2;
  Graph.Builder.add_edge b 2 3;
  let g = Graph.Builder.to_graph b in
  Alcotest.(check int) "m" 2 (Graph.m g)

let test_remove_vertices () =
  let g = Families.cycle 5 in
  let g' = Graph.remove_vertices g (Bitset.of_list 5 [ 0 ]) in
  Alcotest.(check int) "n unchanged" 5 (Graph.n g');
  Alcotest.(check int) "m" 3 (Graph.m g');
  Alcotest.(check int) "0 isolated" 0 (Graph.degree g' 0);
  Alcotest.(check bool) "1-2 kept" true (Graph.mem_edge g' 1 2)

let test_add_edges () =
  let g = Families.path_graph 4 in
  let g' = Graph.add_edges g [ (0, 3); (0, 1) ] in
  Alcotest.(check int) "m" 4 (Graph.m g');
  Alcotest.(check bool) "new edge" true (Graph.mem_edge g' 0 3);
  (* the original is untouched *)
  Alcotest.(check int) "original m" 3 (Graph.m g)

let test_induced () =
  let g = Families.cycle 6 in
  let sub, map = Graph.induced g [ 0; 1; 2; 4 ] in
  Alcotest.(check int) "n" 4 (Graph.n sub);
  Alcotest.(check int) "m: 0-1, 1-2 survive" 2 (Graph.m sub);
  Alcotest.(check (array int)) "map" [| 0; 1; 2; 4 |] map

let test_complement () =
  let g = Families.path_graph 4 in
  let c = Graph.complement g in
  Alcotest.(check int) "m" 3 (Graph.m c);
  Alcotest.(check bool) "0-2 in complement" true (Graph.mem_edge c 0 2);
  Alcotest.(check bool) "0-1 not" false (Graph.mem_edge c 0 1)

let test_equal () =
  Alcotest.(check bool) "equal" true (Graph.equal (triangle ()) (triangle ()));
  Alcotest.(check bool) "not equal" false
    (Graph.equal (triangle ()) (Families.path_graph 3))

let test_empty_graph () =
  let g = Graph.empty 5 in
  Alcotest.(check int) "m" 0 (Graph.m g);
  Alcotest.(check int) "min degree" 0 (Graph.min_degree g)

let () =
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "of_edges basics" `Quick test_of_edges_basic;
          Alcotest.test_case "dedup & self-loops" `Quick test_dedup_and_self_loops;
          Alcotest.test_case "out of range" `Quick test_out_of_range;
          Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
          Alcotest.test_case "degrees" `Quick test_degrees;
          Alcotest.test_case "edges listing" `Quick test_edges_listing;
          Alcotest.test_case "iter_edges once" `Quick test_iter_edges_once;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "remove_vertices" `Quick test_remove_vertices;
          Alcotest.test_case "add_edges" `Quick test_add_edges;
          Alcotest.test_case "induced" `Quick test_induced;
          Alcotest.test_case "complement" `Quick test_complement;
          Alcotest.test_case "equal" `Quick test_equal;
          Alcotest.test_case "empty graph" `Quick test_empty_graph;
        ] );
    ]
