open Ftr_graph

(* Shared checker: paths from src to dst, internally disjoint. *)
let check_disjoint_family g ~src ~dst paths =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      Alcotest.(check int) "src" src (Path.source p);
      Alcotest.(check int) "dst" dst (Path.target p);
      Alcotest.(check bool) "valid" true (Path.is_valid_in g p);
      List.iter
        (fun v ->
          Alcotest.(check bool)
            (Printf.sprintf "interior %d unshared" v)
            false (Hashtbl.mem seen v);
          Hashtbl.add seen v ())
        (Path.interior p))
    paths

let test_cycle_two_paths () =
  let g = Families.cycle 6 in
  let paths = Disjoint_paths.st_paths g ~src:0 ~dst:3 () in
  Alcotest.(check int) "two ways around" 2 (List.length paths);
  check_disjoint_family g ~src:0 ~dst:3 paths

let test_hypercube_count () =
  let g = Families.hypercube 4 in
  let paths = Disjoint_paths.st_paths g ~src:0 ~dst:15 () in
  Alcotest.(check int) "d paths" 4 (List.length paths);
  check_disjoint_family g ~src:0 ~dst:15 paths

let test_k_cap () =
  let g = Families.hypercube 4 in
  let paths = Disjoint_paths.st_paths g ~src:0 ~dst:15 ~k:2 () in
  Alcotest.(check int) "capped" 2 (List.length paths);
  check_disjoint_family g ~src:0 ~dst:15 paths

let test_adjacent_includes_edge () =
  let g = Families.complete 5 in
  let paths = Disjoint_paths.st_paths g ~src:0 ~dst:1 () in
  Alcotest.(check int) "n-1 paths" 4 (List.length paths);
  Alcotest.(check bool) "direct edge present" true
    (List.exists (fun p -> Path.length p = 1) paths);
  check_disjoint_family g ~src:0 ~dst:1 paths

let test_st_connectivity () =
  let g = Families.petersen () in
  Alcotest.(check int) "3-connected pair" 3
    (Disjoint_paths.st_connectivity g ~src:0 ~dst:7 ());
  Alcotest.(check int) "limited" 2
    (Disjoint_paths.st_connectivity g ~src:0 ~dst:7 ~limit:2 ())

let test_min_separator () =
  let g = Families.cycle 8 in
  let cut = Disjoint_paths.st_min_separator g ~src:0 ~dst:4 in
  Alcotest.(check int) "size 2" 2 (List.length cut);
  Alcotest.(check bool) "separates" true (Separator.separates g cut 0 4)

let test_min_separator_adjacent_rejected () =
  let g = Families.cycle 8 in
  Alcotest.check_raises "adjacent"
    (Invalid_argument "Disjoint_paths.st_min_separator: adjacent vertices") (fun () ->
      ignore (Disjoint_paths.st_min_separator g ~src:0 ~dst:1))

let test_fan_basic () =
  let g = Families.torus 5 5 in
  let targets = Array.to_list (Graph.neighbors g 12) in
  let paths = Disjoint_paths.fan_to_set g ~src:0 ~targets () in
  Alcotest.(check int) "four fans" 4 (List.length paths);
  let target_set = Bitset.of_list 25 targets in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun p ->
      Alcotest.(check int) "src" 0 (Path.source p);
      Alcotest.(check bool) "ends in target" true (Bitset.mem target_set (Path.target p));
      Alcotest.(check bool) "valid" true (Path.is_valid_in g p);
      List.iter
        (fun v ->
          Alcotest.(check bool) "interior avoids targets" false (Bitset.mem target_set v);
          Alcotest.(check bool) "interior unshared" false (Hashtbl.mem seen v);
          Hashtbl.add seen v ())
        (Path.interior p))
    paths;
  let endpoints = List.map Path.target paths in
  Alcotest.(check int) "distinct targets" 4 (List.length (List.sort_uniq compare endpoints))

let test_fan_k_cap () =
  let g = Families.torus 5 5 in
  let targets = Array.to_list (Graph.neighbors g 12) in
  Alcotest.(check int) "capped at 2" 2
    (List.length (Disjoint_paths.fan_to_set g ~src:0 ~targets ~k:2 ()))

let test_fan_src_is_target () =
  let g = Families.cycle 4 in
  Alcotest.check_raises "src in targets"
    (Invalid_argument "Disjoint_paths.fan_to_set: src is a target") (fun () ->
      ignore (Disjoint_paths.fan_to_set g ~src:0 ~targets:[ 0; 2 ] ()))

let test_fan_more_targets_than_connectivity () =
  (* On a cycle only 2 disjoint fans exist no matter how many targets. *)
  let g = Families.cycle 10 in
  let paths = Disjoint_paths.fan_to_set g ~src:0 ~targets:[ 3; 5; 7 ] () in
  Alcotest.(check int) "two fans" 2 (List.length paths)

let () =
  Alcotest.run "disjoint_paths"
    [
      ( "st_paths",
        [
          Alcotest.test_case "cycle" `Quick test_cycle_two_paths;
          Alcotest.test_case "hypercube count" `Quick test_hypercube_count;
          Alcotest.test_case "k cap" `Quick test_k_cap;
          Alcotest.test_case "adjacent includes edge" `Quick test_adjacent_includes_edge;
        ] );
      ( "st_connectivity",
        [
          Alcotest.test_case "petersen pair" `Quick test_st_connectivity;
          Alcotest.test_case "min separator" `Quick test_min_separator;
          Alcotest.test_case "adjacent rejected" `Quick test_min_separator_adjacent_rejected;
        ] );
      ( "fan_to_set",
        [
          Alcotest.test_case "basic" `Quick test_fan_basic;
          Alcotest.test_case "k cap" `Quick test_fan_k_cap;
          Alcotest.test_case "src is target" `Quick test_fan_src_is_target;
          Alcotest.test_case "limited by connectivity" `Quick test_fan_more_targets_than_connectivity;
        ] );
    ]
