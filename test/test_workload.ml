open Ftr_sim

let rng () = Random.State.make [| 77 |]

let test_all_pairs () =
  let entries = Workload.all_pairs ~n:4 ~spacing:1.0 in
  Alcotest.(check int) "n(n-1) entries" 12 (List.length entries);
  (* no self-sends, times strictly increasing *)
  let rec check last = function
    | [] -> ()
    | (t, s, d) :: rest ->
        Alcotest.(check bool) "no self" true (s <> d);
        Alcotest.(check bool) "increasing" true (t > last);
        check t rest
  in
  check (-1.0) entries

let test_uniform () =
  let entries = Workload.uniform ~rng:(rng ()) ~n:10 ~count:50 ~horizon:100.0 in
  Alcotest.(check int) "count" 50 (List.length entries);
  List.iter
    (fun (t, s, d) ->
      Alcotest.(check bool) "in horizon" true (t >= 0.0 && t < 100.0);
      Alcotest.(check bool) "no self" true (s <> d))
    entries;
  (* sorted by time *)
  let times = List.map (fun (t, _, _) -> t) entries in
  Alcotest.(check (list (float 0.0))) "sorted" (List.sort compare times) times

let test_uniform_needs_two () =
  Alcotest.check_raises "n=1" (Invalid_argument "Workload.uniform: need n >= 2") (fun () ->
      ignore (Workload.uniform ~rng:(rng ()) ~n:1 ~count:1 ~horizon:1.0))

let test_hotspot () =
  let entries =
    Workload.hotspot ~rng:(rng ()) ~n:10 ~hub:3 ~fraction:1.0 ~count:30 ~horizon:10.0
  in
  List.iter
    (fun (_, s, d) ->
      Alcotest.(check int) "all to hub" 3 d;
      Alcotest.(check bool) "never from hub" true (s <> 3))
    entries

let test_hotspot_mixed () =
  let entries =
    Workload.hotspot ~rng:(rng ()) ~n:10 ~hub:0 ~fraction:0.5 ~count:200 ~horizon:10.0
  in
  let to_hub = List.length (List.filter (fun (_, _, d) -> d = 0) entries) in
  Alcotest.(check bool) "roughly half" true (to_hub > 60 && to_hub < 140)

let test_permutation () =
  let entries = Workload.permutation ~rng:(rng ()) ~n:8 ~at:5.0 in
  Alcotest.(check bool) "at most n" true (List.length entries <= 8);
  let dsts = List.map (fun (_, _, d) -> d) entries in
  Alcotest.(check int) "destinations distinct" (List.length dsts)
    (List.length (List.sort_uniq compare dsts));
  List.iter
    (fun (t, s, d) ->
      Alcotest.(check (float 0.0)) "time" 5.0 t;
      Alcotest.(check bool) "no self" true (s <> d))
    entries

let test_zipf_shape () =
  let entries =
    Workload.zipf ~rng:(rng ()) ~n:10 ~s:2.0 ~count:400 ~horizon:10.0
  in
  Alcotest.(check int) "count honoured" 400 (List.length entries);
  List.iter
    (fun (t, s, d) ->
      Alcotest.(check bool) "in horizon" true (t >= 0.0 && t < 10.0);
      Alcotest.(check bool) "no self" true (s <> d);
      Alcotest.(check bool) "in range" true (d >= 0 && d < 10))
    entries;
  (* s=2 concentrates hard on node 0: weight 1 / (1 + 1/4 + 1/9 + ...)
     is ~0.63 of the mass; just check dominance over the tail. *)
  let hits k = List.length (List.filter (fun (_, _, d) -> d = k) entries) in
  Alcotest.(check bool) "head dominates tail" true (hits 0 > 4 * hits 9);
  (* sorted by send time, like every generator here *)
  let times = List.map (fun (t, _, _) -> t) entries in
  Alcotest.(check bool) "sorted" true (List.sort compare times = times)

let test_zipf_zero_is_uniformish () =
  let entries =
    Workload.zipf ~rng:(rng ()) ~n:8 ~s:0.0 ~count:800 ~horizon:1.0
  in
  let hits k = List.length (List.filter (fun (_, _, d) -> d = k) entries) in
  (* expectation 100 per node; allow generous slack *)
  for k = 0 to 7 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d near uniform" k)
      true
      (hits k > 40 && hits k < 180)
  done

let test_zipf_validates () =
  Alcotest.check_raises "n too small"
    (Invalid_argument "Workload.zipf: need n >= 2") (fun () ->
      ignore (Workload.zipf ~rng:(rng ()) ~n:1 ~s:1.0 ~count:1 ~horizon:1.0));
  Alcotest.check_raises "bad exponent"
    (Invalid_argument "Workload.zipf: exponent must be finite and >= 0") (fun () ->
      ignore (Workload.zipf ~rng:(rng ()) ~n:4 ~s:(-1.0) ~count:1 ~horizon:1.0))

let test_flash_crowd () =
  let entries =
    Workload.flash_crowd ~rng:(rng ()) ~n:10 ~hub:2 ~base:50 ~burst:80 ~at:5.0
      ~width:0.5 ~horizon:10.0
  in
  Alcotest.(check int) "base + burst" 130 (List.length entries);
  let crowd = List.filter (fun (t, _, _) -> t >= 5.0 && t < 5.5) entries in
  let to_hub = List.filter (fun (_, _, d) -> d = 2) crowd in
  Alcotest.(check bool) "crowd packed into the window" true
    (List.length to_hub >= 80);
  List.iter (fun (_, s, _) -> Alcotest.(check bool) "no self" true (s <> 2)) to_hub;
  let times = List.map (fun (t, _, _) -> t) entries in
  Alcotest.(check bool) "merged sorted" true (List.sort compare times = times)

let test_flash_crowd_validates () =
  Alcotest.check_raises "hub out of range"
    (Invalid_argument "Workload.flash_crowd: bad hub") (fun () ->
      ignore
        (Workload.flash_crowd ~rng:(rng ()) ~n:4 ~hub:9 ~base:1 ~burst:1
           ~at:0.0 ~width:1.0 ~horizon:1.0))

let test_zipf_pairs () =
  let alive = [ 2; 3; 5; 7; 9 ] in
  let pairs = Workload.zipf_pairs ~rng:(rng ()) ~alive ~s:1.5 ~count:300 in
  Alcotest.(check int) "count honoured" 300 (List.length pairs);
  List.iter
    (fun (s, d) ->
      Alcotest.(check bool) "src alive" true (List.mem s alive);
      Alcotest.(check bool) "dst alive" true (List.mem d alive);
      Alcotest.(check bool) "no self" true (s <> d))
    pairs;
  (* position 0 of the pool (node 2) is the most popular destination *)
  let hits k = List.length (List.filter (fun (_, d) -> d = k) pairs) in
  Alcotest.(check bool) "pool head dominates" true (hits 2 > hits 9);
  Alcotest.(check (list (pair int int))) "degenerate pool" []
    (Workload.zipf_pairs ~rng:(rng ()) ~alive:[ 4 ] ~s:1.0 ~count:5)

(* Determinism pin for the sort fix: the generators order entries with
   an explicit (time, src, dst) comparator, so two runs from the same
   seed are byte-identical — Marshal catches any float-key or
   tie-break instability that structural spot checks would miss. *)
let prop_zipf_deterministic =
  QCheck.Test.make ~name:"zipf workload is byte-identical across runs" ~count:50
    QCheck.(
      triple (int_range 2 40) (int_range 0 1_000_000) (int_range 0 300))
    (fun (n, seed, count) ->
      let run () =
        Workload.zipf
          ~rng:(Random.State.make [| seed |])
          ~n ~s:1.2 ~count ~horizon:50.0
      in
      Marshal.to_string (run ()) [] = Marshal.to_string (run ()) [])

let prop_uniform_deterministic =
  QCheck.Test.make ~name:"uniform workload is byte-identical across runs"
    ~count:50
    QCheck.(
      triple (int_range 2 40) (int_range 0 1_000_000) (int_range 0 300))
    (fun (n, seed, count) ->
      let run () =
        Workload.uniform
          ~rng:(Random.State.make [| seed |])
          ~n ~count ~horizon:50.0
      in
      Marshal.to_string (run ()) [] = Marshal.to_string (run ()) [])

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "all_pairs" `Quick test_all_pairs;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "uniform n>=2" `Quick test_uniform_needs_two;
          Alcotest.test_case "hotspot pure" `Quick test_hotspot;
          Alcotest.test_case "hotspot mixed" `Quick test_hotspot_mixed;
          Alcotest.test_case "permutation" `Quick test_permutation;
          Alcotest.test_case "zipf shape" `Quick test_zipf_shape;
          Alcotest.test_case "zipf s=0 uniformish" `Quick
            test_zipf_zero_is_uniformish;
          Alcotest.test_case "zipf validates" `Quick test_zipf_validates;
          Alcotest.test_case "flash crowd" `Quick test_flash_crowd;
          Alcotest.test_case "flash crowd validates" `Quick
            test_flash_crowd_validates;
          Alcotest.test_case "zipf pairs" `Quick test_zipf_pairs;
        ] );
      ( "determinism",
        List.map QCheck_alcotest.to_alcotest
          [ prop_zipf_deterministic; prop_uniform_deterministic ] );
    ]
