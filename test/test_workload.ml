open Ftr_sim

let rng () = Random.State.make [| 77 |]

let test_all_pairs () =
  let entries = Workload.all_pairs ~n:4 ~spacing:1.0 in
  Alcotest.(check int) "n(n-1) entries" 12 (List.length entries);
  (* no self-sends, times strictly increasing *)
  let rec check last = function
    | [] -> ()
    | (t, s, d) :: rest ->
        Alcotest.(check bool) "no self" true (s <> d);
        Alcotest.(check bool) "increasing" true (t > last);
        check t rest
  in
  check (-1.0) entries

let test_uniform () =
  let entries = Workload.uniform ~rng:(rng ()) ~n:10 ~count:50 ~horizon:100.0 in
  Alcotest.(check int) "count" 50 (List.length entries);
  List.iter
    (fun (t, s, d) ->
      Alcotest.(check bool) "in horizon" true (t >= 0.0 && t < 100.0);
      Alcotest.(check bool) "no self" true (s <> d))
    entries;
  (* sorted by time *)
  let times = List.map (fun (t, _, _) -> t) entries in
  Alcotest.(check (list (float 0.0))) "sorted" (List.sort compare times) times

let test_uniform_needs_two () =
  Alcotest.check_raises "n=1" (Invalid_argument "Workload.uniform: need n >= 2") (fun () ->
      ignore (Workload.uniform ~rng:(rng ()) ~n:1 ~count:1 ~horizon:1.0))

let test_hotspot () =
  let entries =
    Workload.hotspot ~rng:(rng ()) ~n:10 ~hub:3 ~fraction:1.0 ~count:30 ~horizon:10.0
  in
  List.iter
    (fun (_, s, d) ->
      Alcotest.(check int) "all to hub" 3 d;
      Alcotest.(check bool) "never from hub" true (s <> 3))
    entries

let test_hotspot_mixed () =
  let entries =
    Workload.hotspot ~rng:(rng ()) ~n:10 ~hub:0 ~fraction:0.5 ~count:200 ~horizon:10.0
  in
  let to_hub = List.length (List.filter (fun (_, _, d) -> d = 0) entries) in
  Alcotest.(check bool) "roughly half" true (to_hub > 60 && to_hub < 140)

let test_permutation () =
  let entries = Workload.permutation ~rng:(rng ()) ~n:8 ~at:5.0 in
  Alcotest.(check bool) "at most n" true (List.length entries <= 8);
  let dsts = List.map (fun (_, _, d) -> d) entries in
  Alcotest.(check int) "destinations distinct" (List.length dsts)
    (List.length (List.sort_uniq compare dsts));
  List.iter
    (fun (t, s, d) ->
      Alcotest.(check (float 0.0)) "time" 5.0 t;
      Alcotest.(check bool) "no self" true (s <> d))
    entries

let () =
  Alcotest.run "workload"
    [
      ( "workload",
        [
          Alcotest.test_case "all_pairs" `Quick test_all_pairs;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "uniform n>=2" `Quick test_uniform_needs_two;
          Alcotest.test_case "hotspot pure" `Quick test_hotspot;
          Alcotest.test_case "hotspot mixed" `Quick test_hotspot_mixed;
          Alcotest.test_case "permutation" `Quick test_permutation;
        ] );
    ]
