open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let edge_routing g =
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  r

let test_affects_edge () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_edge fm 1 2;
  Alcotest.(check bool) "route using edge dies" true
    (Fault_model.affects fm (Path.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool) "other direction too" true
    (Fault_model.affects fm (Path.of_list [ 2; 1; 0 ]));
  Alcotest.(check bool) "vertex-only touch survives" false
    (Fault_model.affects fm (Path.of_list [ 0; 1 ]))

let test_affects_node () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_node fm 3;
  Alcotest.(check bool) "interior" true (Fault_model.affects fm (Path.of_list [ 2; 3; 4 ]));
  Alcotest.(check bool) "endpoint" true (Fault_model.affects fm (Path.of_list [ 3; 4 ]));
  Alcotest.(check bool) "unrelated" false (Fault_model.affects fm (Path.of_list [ 0; 1 ]))

let test_fail_edge_validates () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Alcotest.check_raises "non-edge" (Invalid_argument "Fault_model.fail_edge: not an edge")
    (fun () -> Fault_model.fail_edge fm 0 3)

let test_endpoint_projection () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_node fm 5;
  Fault_model.fail_edge fm 2 1;
  let proj = Fault_model.endpoint_projection fm in
  Alcotest.(check (list int)) "node + smaller endpoint" [ 1; 5 ] (Bitset.elements proj)

let test_edge_fault_diameter () =
  let g = Families.cycle 6 in
  let r = edge_routing g in
  let fm = Fault_model.create g in
  Fault_model.fail_edge fm 0 1;
  (* all nodes alive; 0 and 1 reconnect the long way *)
  Alcotest.(check distance) "diameter 5" (Metrics.Finite 5) (Fault_model.diameter r fm)

let test_edge_faults_weaker_than_node_faults () =
  (* The paper's reduction: projecting each failed edge to an endpoint
     fault can only shrink the surviving graph (on surviving nodes).
     Check arc-set inclusion exhaustively over single edge faults. *)
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:3 in
  let r = c.Construction.routing in
  Graph.iter_edges
    (fun u v ->
      let fm = Fault_model.create g in
      Fault_model.fail_edge fm u v;
      let dg_edge = Fault_model.surviving r fm in
      let dg_node = Surviving.graph r ~faults:(Bitset.of_list 16 [ min u v ]) in
      for x = 0 to 15 do
        Array.iter
          (fun y ->
            Alcotest.(check bool)
              (Printf.sprintf "arc %d->%d survives under weaker edge fault" x y)
              true (Digraph.mem_arc dg_edge x y))
          (Digraph.succ dg_node x)
      done)
    g

let test_kernel_under_edge_faults () =
  (* t edge faults: every pair of nodes outside the projected endpoint
     set keeps the theorem distance; measure the full diameter too. *)
  let g = Families.hypercube 3 in
  let c = Kernel.make g ~t:2 in
  let r = c.Construction.routing in
  let edges = Graph.edges g in
  List.iter
    (fun (e1, e2) ->
      let fm = Fault_model.create g in
      let u1, v1 = e1 and u2, v2 = e2 in
      Fault_model.fail_edge fm u1 v1;
      Fault_model.fail_edge fm u2 v2;
      let d = Fault_model.diameter r fm in
      Alcotest.(check bool) "finite" true
        (match d with Metrics.Finite _ -> true | Metrics.Infinite -> false))
    (List.concat_map (fun e1 -> List.map (fun e2 -> (e1, e2)) edges) edges)

let test_counts () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_edge fm 0 1;
  Fault_model.fail_edge fm 1 0;
  Alcotest.(check int) "normalised" 1 (Fault_model.edge_fault_count fm);
  Fault_model.fail_node fm 4;
  Alcotest.(check int) "nodes" 1 (Bitset.cardinal (Fault_model.node_faults fm))

let () =
  Alcotest.run "fault_model"
    [
      ( "fault_model",
        [
          Alcotest.test_case "affects edge" `Quick test_affects_edge;
          Alcotest.test_case "affects node" `Quick test_affects_node;
          Alcotest.test_case "fail_edge validates" `Quick test_fail_edge_validates;
          Alcotest.test_case "endpoint projection" `Quick test_endpoint_projection;
          Alcotest.test_case "edge fault diameter" `Quick test_edge_fault_diameter;
          Alcotest.test_case "edge weaker than node" `Slow test_edge_faults_weaker_than_node_faults;
          Alcotest.test_case "kernel under edge faults" `Slow test_kernel_under_edge_faults;
          Alcotest.test_case "counts" `Quick test_counts;
        ] );
    ]
