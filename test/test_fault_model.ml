open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let edge_routing g =
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  r

let test_affects_edge () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_edge fm 1 2;
  Alcotest.(check bool) "route using edge dies" true
    (Fault_model.affects fm (Path.of_list [ 0; 1; 2 ]));
  Alcotest.(check bool) "other direction too" true
    (Fault_model.affects fm (Path.of_list [ 2; 1; 0 ]));
  Alcotest.(check bool) "vertex-only touch survives" false
    (Fault_model.affects fm (Path.of_list [ 0; 1 ]))

let test_affects_node () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_node fm 3;
  Alcotest.(check bool) "interior" true (Fault_model.affects fm (Path.of_list [ 2; 3; 4 ]));
  Alcotest.(check bool) "endpoint" true (Fault_model.affects fm (Path.of_list [ 3; 4 ]));
  Alcotest.(check bool) "unrelated" false (Fault_model.affects fm (Path.of_list [ 0; 1 ]))

let test_fail_edge_validates () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Alcotest.check_raises "non-edge" (Invalid_argument "Fault_model.fail_edge: not an edge")
    (fun () -> Fault_model.fail_edge fm 0 3)

let test_endpoint_projection () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_node fm 5;
  Fault_model.fail_edge fm 2 1;
  let proj = Fault_model.endpoint_projection fm in
  Alcotest.(check (list int)) "node + smaller endpoint" [ 1; 5 ] (Bitset.elements proj)

let test_edge_fault_diameter () =
  let g = Families.cycle 6 in
  let r = edge_routing g in
  let fm = Fault_model.create g in
  Fault_model.fail_edge fm 0 1;
  (* all nodes alive; 0 and 1 reconnect the long way *)
  Alcotest.(check distance) "diameter 5" (Metrics.Finite 5) (Fault_model.diameter r fm)

let test_edge_faults_weaker_than_node_faults () =
  (* The paper's reduction: projecting each failed edge to an endpoint
     fault can only shrink the surviving graph (on surviving nodes).
     Check arc-set inclusion exhaustively over single edge faults. *)
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:3 in
  let r = c.Construction.routing in
  Graph.iter_edges
    (fun u v ->
      let fm = Fault_model.create g in
      Fault_model.fail_edge fm u v;
      let dg_edge = Fault_model.surviving r fm in
      let dg_node = Surviving.graph r ~faults:(Bitset.of_list 16 [ min u v ]) in
      for x = 0 to 15 do
        Array.iter
          (fun y ->
            Alcotest.(check bool)
              (Printf.sprintf "arc %d->%d survives under weaker edge fault" x y)
              true (Digraph.mem_arc dg_edge x y))
          (Digraph.succ dg_node x)
      done)
    g

let test_kernel_under_edge_faults () =
  (* t edge faults: every pair of nodes outside the projected endpoint
     set keeps the theorem distance; measure the full diameter too. *)
  let g = Families.hypercube 3 in
  let c = Kernel.make g ~t:2 in
  let r = c.Construction.routing in
  let edges = Graph.edges g in
  List.iter
    (fun (e1, e2) ->
      let fm = Fault_model.create g in
      let u1, v1 = e1 and u2, v2 = e2 in
      Fault_model.fail_edge fm u1 v1;
      Fault_model.fail_edge fm u2 v2;
      let d = Fault_model.diameter r fm in
      Alcotest.(check bool) "finite" true
        (match d with Metrics.Finite _ -> true | Metrics.Infinite -> false))
    (List.concat_map (fun e1 -> List.map (fun e2 -> (e1, e2)) edges) edges)

let test_recovery () =
  let g = Families.cycle 6 in
  let r = edge_routing g in
  let fm = Fault_model.create g in
  let healthy = Fault_model.diameter r fm in
  Fault_model.fail_node fm 2;
  Fault_model.fail_edge fm 4 5;
  Alcotest.(check int) "mixed fault count" 2 (Fault_model.fault_count fm);
  Alcotest.(check bool) "edge failed, either order" true
    (Fault_model.edge_failed fm 5 4);
  Fault_model.recover_edge fm 5 4;
  Alcotest.(check bool) "edge recovered" false (Fault_model.edge_failed fm 4 5);
  Fault_model.recover_node fm 2;
  Alcotest.(check int) "all recovered" 0 (Fault_model.fault_count fm);
  Alcotest.check distance "diameter restored" healthy (Fault_model.diameter r fm);
  (* recovery of a healthy element is a no-op, not an error *)
  Fault_model.recover_node fm 2;
  Fault_model.recover_edge fm 4 5;
  Alcotest.(check int) "still clean" 0 (Fault_model.fault_count fm)

(* The paper's reduction as a graph property: over the projection's
   surviving nodes, the edge-fault surviving graph is a supergraph of
   the endpoint-projection surviving graph — randomised over graphs,
   routings and mixed node/link fault sets. *)
let prop_edge_surviving_supergraph_of_projection =
  let gen =
    QCheck.Gen.(
      let* n = int_range 5 12 in
      let* extra = int_range 0 n in
      let* seed = int_range 0 1_000_000 in
      let rng = Random.State.make [| seed |] in
      let chords =
        List.init extra (fun _ -> (Random.State.int rng n, Random.State.int rng n))
      in
      let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
      let g = Graph.of_edges ~n (cycle @ chords) in
      let all_edges = Graph.edges g in
      let m = List.length all_edges in
      let k = Random.State.int rng (min 4 m) in
      let edges =
        List.sort_uniq compare
          (List.init k (fun _ -> List.nth all_edges (Random.State.int rng m)))
      in
      let nf = Random.State.int rng (min 3 n) in
      let nodes =
        List.sort_uniq compare (List.init nf (fun _ -> Random.State.int rng n))
      in
      return (g, nodes, edges))
  in
  QCheck.Test.make
    ~name:"edge-fault surviving graph ⊇ projection's (on its survivors)"
    ~count:80
    (QCheck.make
       ~print:(fun (g, nodes, edges) ->
         Format.asprintf "n=%d F={%a} E={%a}" (Graph.n g)
           Fmt.(list ~sep:comma int)
           nodes
           Fmt.(list ~sep:comma (pair ~sep:(any "-") int int))
           edges)
       gen)
    (fun (g, nodes, edges) ->
      let n = Graph.n g in
      QCheck.assume (List.length (Graph.edges g) < n * (n - 1) / 2);
      let r = (Kernel.make g ~t:(max 1 (Connectivity.vertex_connectivity g - 1)))
                .Construction.routing
      in
      let fm = Fault_model.create g in
      List.iter (Fault_model.fail_node fm) nodes;
      List.iter (fun (u, v) -> Fault_model.fail_edge fm u v) edges;
      let proj = Fault_model.endpoint_projection fm in
      let dg_edge = Fault_model.surviving r fm in
      let dg_proj = Surviving.graph r ~faults:proj in
      let ok = ref true in
      for x = 0 to n - 1 do
        if not (Bitset.mem proj x) then
          Array.iter
            (fun y -> if not (Digraph.mem_arc dg_edge x y) then ok := false)
            (Digraph.succ dg_proj x)
      done;
      !ok)

let test_counts () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.fail_edge fm 0 1;
  Fault_model.fail_edge fm 1 0;
  Alcotest.(check int) "normalised" 1 (Fault_model.edge_fault_count fm);
  Fault_model.fail_node fm 4;
  Alcotest.(check int) "nodes" 1 (Bitset.cardinal (Fault_model.node_faults fm))

(* ---------------- gray failures ---------------- *)

let test_degrade_basics () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Alcotest.(check (float 0.0)) "healthy factor" 1.0
    (Fault_model.edge_degradation fm 0 1);
  Fault_model.degrade_edge fm 1 0 ~factor:3.5;
  Alcotest.(check (float 0.0)) "either order" 3.5
    (Fault_model.edge_degradation fm 0 1);
  Alcotest.(check int) "counted" 1 (Fault_model.degraded_edge_count fm);
  Alcotest.(check int) "hard faults unaffected" 0 (Fault_model.fault_count fm);
  Fault_model.restore_edge fm 0 1;
  Alcotest.(check (float 0.0)) "restored" 1.0
    (Fault_model.edge_degradation fm 0 1);
  Alcotest.(check int) "empty again" 0 (Fault_model.degraded_edge_count fm)

let test_degrade_validates () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Alcotest.check_raises "non-edge"
    (Invalid_argument "Fault_model.degrade_edge: not an edge") (fun () ->
      Fault_model.degrade_edge fm 0 3 ~factor:2.0);
  Alcotest.check_raises "factor below 1"
    (Invalid_argument "Fault_model.degrade_edge: factor must be finite and >= 1")
    (fun () -> Fault_model.degrade_edge fm 0 1 ~factor:0.5);
  Alcotest.check_raises "nan factor"
    (Invalid_argument "Fault_model.degrade_edge: factor must be finite and >= 1")
    (fun () -> Fault_model.degrade_edge fm 0 1 ~factor:Float.nan)

let test_degrade_factor_one_is_canonical () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  let clean = Fault_model.digest fm in
  Fault_model.degrade_edge fm 0 1 ~factor:1.0;
  Alcotest.(check int) "factor 1 never recorded" 0
    (Fault_model.degraded_edge_count fm);
  Alcotest.(check string) "digest untouched" clean (Fault_model.digest fm);
  Fault_model.degrade_edge fm 0 1 ~factor:2.0;
  Fault_model.degrade_edge fm 0 1 ~factor:1.0;
  Alcotest.(check string) "re-degrading to 1 erases" clean
    (Fault_model.digest fm)

let test_path_delay_factor_is_mean () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.degrade_edge fm 0 1 ~factor:4.0;
  Alcotest.(check (float 1e-9)) "healthy path" 1.0
    (Fault_model.path_delay_factor fm (Path.of_list [ 2; 3; 4 ]));
  Alcotest.(check (float 1e-9)) "single degraded hop" 4.0
    (Fault_model.path_delay_factor fm (Path.of_list [ 0; 1 ]));
  (* two hops, one at 4x, one healthy: mean 2.5 *)
  Alcotest.(check (float 1e-9)) "mean over hops" 2.5
    (Fault_model.path_delay_factor fm (Path.of_list [ 0; 1; 2 ]));
  Alcotest.(check (float 1e-9)) "trivial path" 1.0
    (Fault_model.path_delay_factor fm (Path.of_list [ 3 ]))

let test_degrade_digest_section () =
  let g = Families.cycle 6 in
  let fm = Fault_model.create g in
  Fault_model.degrade_edge fm 2 1 ~factor:2.0;
  Fault_model.degrade_edge fm 4 5 ~factor:8.0;
  Alcotest.(check string) "sorted canonical slow section"
    "nodes{} links{} slow{1-2*2,4-5*8}" (Fault_model.digest fm)

(* Shared generator for the gray-failure properties: a random chorded
   cycle plus a random degradation set (edges of the graph, factors in
   [1, 16]). *)
let gray_gen =
  QCheck.Gen.(
    let* n = int_range 5 12 in
    let* extra = int_range 0 n in
    let* seed = int_range 0 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let chords =
      List.init extra (fun _ -> (Random.State.int rng n, Random.State.int rng n))
    in
    let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
    let g = Graph.of_edges ~n (cycle @ chords) in
    let all_edges = Graph.edges g in
    let m = List.length all_edges in
    let k = Random.State.int rng (min 5 m) in
    let degrades =
      List.map
        (fun _ ->
          let u, v = List.nth all_edges (Random.State.int rng m) in
          (u, v, 1.5 +. Random.State.float rng 14.5))
        (List.init k Fun.id)
    in
    return (g, degrades))

let gray_print (g, degrades) =
  Format.asprintf "n=%d slow={%a}" (Graph.n g)
    Fmt.(
      list ~sep:comma (fun ppf (u, v, f) -> Fmt.pf ppf "%d-%d*%.3g" u v f))
    degrades

(* Degrade + restore is a digest round trip: applying a wave of
   degradations and then restoring exactly those links must return the
   digest to its starting bytes (the chaos harness's convergence gate
   at the model level). *)
let prop_degrade_restore_roundtrips_digest =
  QCheck.Test.make ~name:"degrade+restore round-trips the digest" ~count:120
    (QCheck.make ~print:gray_print gray_gen)
    (fun (g, degrades) ->
      let fm = Fault_model.create g in
      let before = Fault_model.digest fm in
      List.iter (fun (u, v, f) -> Fault_model.degrade_edge fm u v ~factor:f) degrades;
      let during = Fault_model.digest fm in
      List.iter (fun (u, v, _) -> Fault_model.restore_edge fm u v) degrades;
      (degrades = [] || during <> before) && Fault_model.digest fm = before)

(* The gray-failure contract: latency degradation never changes
   reachability verdicts. Whatever the degradation set, [affects],
   the surviving graph and the surviving diameter must be identical
   to the healthy model's. *)
let prop_degraded_links_never_change_verdicts =
  QCheck.Test.make
    ~name:"degraded links never change surviving-diameter verdicts" ~count:80
    (QCheck.make ~print:gray_print gray_gen)
    (fun (g, degrades) ->
      let r =
        (Kernel.make g ~t:(max 1 (Connectivity.vertex_connectivity g - 1)))
          .Construction.routing
      in
      let fm = Fault_model.create g in
      let healthy_diameter = Fault_model.diameter r fm in
      let healthy_surviving = Fault_model.surviving r fm in
      List.iter (fun (u, v, f) -> Fault_model.degrade_edge fm u v ~factor:f) degrades;
      let routes_unaffected =
        List.for_all
          (fun (u, v, _) -> not (Fault_model.affects fm (Path.of_list [ u; v ])))
          degrades
      in
      let gray_surviving = Fault_model.surviving r fm in
      let n = Graph.n g in
      let same_arcs = ref true in
      for x = 0 to n - 1 do
        let sa = List.sort compare (Array.to_list (Digraph.succ healthy_surviving x)) in
        let sb = List.sort compare (Array.to_list (Digraph.succ gray_surviving x)) in
        if sa <> sb then same_arcs := false
      done;
      routes_unaffected && !same_arcs
      && Fault_model.diameter r fm = healthy_diameter)

let () =
  Alcotest.run "fault_model"
    [
      ( "fault_model",
        [
          Alcotest.test_case "affects edge" `Quick test_affects_edge;
          Alcotest.test_case "affects node" `Quick test_affects_node;
          Alcotest.test_case "fail_edge validates" `Quick test_fail_edge_validates;
          Alcotest.test_case "endpoint projection" `Quick test_endpoint_projection;
          Alcotest.test_case "edge fault diameter" `Quick test_edge_fault_diameter;
          Alcotest.test_case "edge weaker than node" `Slow test_edge_faults_weaker_than_node_faults;
          Alcotest.test_case "kernel under edge faults" `Slow test_kernel_under_edge_faults;
          Alcotest.test_case "counts" `Quick test_counts;
          Alcotest.test_case "recovery round trip" `Quick test_recovery;
          Alcotest.test_case "degrade basics" `Quick test_degrade_basics;
          Alcotest.test_case "degrade validates" `Quick test_degrade_validates;
          Alcotest.test_case "factor 1 is canonical" `Quick
            test_degrade_factor_one_is_canonical;
          Alcotest.test_case "path delay factor is the hop mean" `Quick
            test_path_delay_factor_is_mean;
          Alcotest.test_case "digest slow section" `Quick
            test_degrade_digest_section;
        ]
        @ List.map QCheck_alcotest.to_alcotest
            [
              prop_edge_surviving_supergraph_of_projection;
              prop_degrade_restore_roundtrips_digest;
              prop_degraded_links_never_change_verdicts;
            ] );
    ]
