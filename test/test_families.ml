open Ftr_graph

let check_graph name ~n ~m ~regular g =
  Alcotest.(check int) (name ^ " n") n (Graph.n g);
  Alcotest.(check int) (name ^ " m") m (Graph.m g);
  (match regular with
  | Some d ->
      Alcotest.(check int) (name ^ " min deg") d (Graph.min_degree g);
      Alcotest.(check int) (name ^ " max deg") d (Graph.max_degree g)
  | None -> ());
  Alcotest.(check bool) (name ^ " connected") true (Traversal.is_connected g)

let test_basic_families () =
  check_graph "path 5" ~n:5 ~m:4 ~regular:None (Families.path_graph 5);
  check_graph "cycle 7" ~n:7 ~m:7 ~regular:(Some 2) (Families.cycle 7);
  check_graph "complete 6" ~n:6 ~m:15 ~regular:(Some 5) (Families.complete 6);
  check_graph "star 5" ~n:5 ~m:4 ~regular:None (Families.star 5);
  check_graph "wheel 7" ~n:7 ~m:12 ~regular:None (Families.wheel 7);
  check_graph "bipartite 3,4" ~n:7 ~m:12 ~regular:None (Families.complete_bipartite 3 4)

let test_grids () =
  check_graph "grid 3x4" ~n:12 ~m:17 ~regular:None (Families.grid 3 4);
  check_graph "torus 4x5" ~n:20 ~m:40 ~regular:(Some 4) (Families.torus 4 5);
  check_graph "torus3 3x3x3" ~n:27 ~m:81 ~regular:(Some 6) (Families.torus3 3 3 3)

let test_hypercube () =
  let g = Families.hypercube 5 in
  check_graph "Q5" ~n:32 ~m:80 ~regular:(Some 5) g;
  (* neighbors differ in exactly one bit *)
  Graph.iter_edges
    (fun u v ->
      let diff = u lxor v in
      Alcotest.(check bool) "one bit" true (diff land (diff - 1) = 0))
    g

let test_ccc () =
  let g = Families.ccc 3 in
  check_graph "ccc3" ~n:24 ~m:36 ~regular:(Some 3) g;
  let g4 = Families.ccc 4 in
  check_graph "ccc4" ~n:64 ~m:96 ~regular:(Some 3) g4;
  Alcotest.(check int) "ccc4 connectivity" 3 (Connectivity.vertex_connectivity g4)

let test_butterfly () =
  let g = Families.butterfly 3 in
  check_graph "bf3" ~n:24 ~m:48 ~regular:(Some 4) g;
  Alcotest.(check int) "bf3 connectivity" 4 (Connectivity.vertex_connectivity g)

let test_de_bruijn () =
  let g = Families.de_bruijn 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check bool) "0-1 edge" true (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "max degree 4" true (Graph.max_degree g <= 4)

let test_shuffle_exchange () =
  let g = Families.shuffle_exchange 4 in
  Alcotest.(check int) "n" 16 (Graph.n g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check bool) "exchange edge" true (Graph.mem_edge g 6 7);
  (* shuffle: 0b0110 -> 0b1100 *)
  Alcotest.(check bool) "shuffle edge" true (Graph.mem_edge g 6 12);
  Alcotest.(check bool) "degree <= 3" true (Graph.max_degree g <= 3);
  (* all-zero and all-one words lose their shuffle self-loop *)
  Alcotest.(check int) "0 has degree 1" 1 (Graph.degree g 0);
  Alcotest.(check int) "15 has degree 1" 1 (Graph.degree g 15)

let test_petersen () =
  let g = Families.petersen () in
  check_graph "petersen" ~n:10 ~m:15 ~regular:(Some 3) g;
  Alcotest.(check (option int)) "girth 5" (Some 5) (Metrics.girth g)

let test_circulant () =
  let g = Families.circulant 10 [ 1; 2 ] in
  check_graph "circulant" ~n:10 ~m:20 ~regular:(Some 4) g;
  Alcotest.(check bool) "offset 2" true (Graph.mem_edge g 0 2);
  (* negative and out-of-range offsets are normalised *)
  let g' = Families.circulant 10 [ -1; 11 ] in
  Alcotest.(check bool) "same as offset 1" true (Graph.equal g' (Families.cycle 10))

let test_validation () =
  Alcotest.check_raises "cycle too small" (Invalid_argument "Families.cycle: n >= 3")
    (fun () -> ignore (Families.cycle 2));
  Alcotest.check_raises "ccc too small" (Invalid_argument "Families.ccc: d >= 3") (fun () ->
      ignore (Families.ccc 2));
  Alcotest.check_raises "torus too small" (Invalid_argument "Families.torus: dims >= 3")
    (fun () -> ignore (Families.torus 2 5))

let () =
  Alcotest.run "families"
    [
      ( "families",
        [
          Alcotest.test_case "basic" `Quick test_basic_families;
          Alcotest.test_case "grids & tori" `Quick test_grids;
          Alcotest.test_case "hypercube" `Quick test_hypercube;
          Alcotest.test_case "ccc" `Quick test_ccc;
          Alcotest.test_case "butterfly" `Quick test_butterfly;
          Alcotest.test_case "de bruijn" `Quick test_de_bruijn;
          Alcotest.test_case "shuffle exchange" `Quick test_shuffle_exchange;
          Alcotest.test_case "petersen" `Quick test_petersen;
          Alcotest.test_case "circulant" `Quick test_circulant;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
    ]
