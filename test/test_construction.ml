open Ftr_graph
open Ftr_core

let dummy_routing () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  r

let make_with claims =
  {
    Construction.name = "dummy";
    routing = dummy_routing ();
    concentrator = [];
    structure = Construction.Unstructured;
    pools = [];
    claims;
  }

let test_claim_constructor () =
  let c = Construction.claim ~bound:4 ~faults:2 "Theorem X" in
  Alcotest.(check int) "bound" 4 c.Construction.diameter_bound;
  Alcotest.(check int) "faults" 2 c.Construction.max_faults;
  Alcotest.(check string) "source" "Theorem X" c.Construction.source

let test_strongest_picks_smallest_bound () =
  let c =
    make_with
      [
        Construction.claim ~bound:6 ~faults:3 "A";
        Construction.claim ~bound:4 ~faults:1 "B";
        Construction.claim ~bound:5 ~faults:3 "C";
      ]
  in
  Alcotest.(check string) "B wins" "B" (Construction.strongest_claim c).Construction.source

let test_strongest_ties_by_faults () =
  let c =
    make_with
      [
        Construction.claim ~bound:4 ~faults:1 "low";
        Construction.claim ~bound:4 ~faults:3 "high";
      ]
  in
  Alcotest.(check string) "more faults wins ties" "high"
    (Construction.strongest_claim c).Construction.source

let test_strongest_empty_raises () =
  let c = make_with [] in
  Alcotest.check_raises "empty" (Invalid_argument "Construction.strongest_claim: no claims")
    (fun () -> ignore (Construction.strongest_claim c))

let test_pp_mentions_claims () =
  let c = make_with [ Construction.claim ~bound:4 ~faults:2 "Theorem X" ] in
  let s = Format.asprintf "%a" Construction.pp c in
  let contains needle =
    let nl = String.length needle and hl = String.length s in
    let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "name" true (contains "dummy");
  Alcotest.(check bool) "claim" true (contains "(4,2)-tolerant");
  Alcotest.(check bool) "source" true (contains "Theorem X")

let test_real_constructions_have_structures () =
  let kernel = Kernel.make (Families.cycle 10) ~t:1 in
  (match kernel.Construction.structure with
  | Construction.Separator m ->
      Alcotest.(check (list int)) "separator matches" kernel.Construction.concentrator m
  | _ -> Alcotest.fail "kernel should carry Separator");
  let circ = Circular.make (Families.cycle 12) ~t:1 in
  (match circ.Construction.structure with
  | Construction.Neighborhood { members; window } ->
      Alcotest.(check (list int)) "members" circ.Construction.concentrator members;
      Alcotest.(check int) "window = ceil(K/2)-1" 1 window
  | _ -> Alcotest.fail "circular should carry Neighborhood");
  let bip = Bipolar.make_unidirectional (Families.cycle 12) ~t:1 in
  match bip.Construction.structure with
  | Construction.Two_poles { r1; r2 } ->
      Alcotest.(check bool) "roots verify" true (Two_trees.verify (Families.cycle 12) r1 r2)
  | _ -> Alcotest.fail "bipolar should carry Two_poles"

let () =
  Alcotest.run "construction"
    [
      ( "construction",
        [
          Alcotest.test_case "claim constructor" `Quick test_claim_constructor;
          Alcotest.test_case "strongest: smallest bound" `Quick test_strongest_picks_smallest_bound;
          Alcotest.test_case "strongest: tie-break" `Quick test_strongest_ties_by_faults;
          Alcotest.test_case "strongest: empty" `Quick test_strongest_empty_raises;
          Alcotest.test_case "pp" `Quick test_pp_mentions_claims;
          Alcotest.test_case "structures" `Quick test_real_constructions_have_structures;
        ] );
    ]
