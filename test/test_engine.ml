(* The incremental evaluation engine: revolving-door enumeration,
   equivalence of the naive / compiled / incremental diameter paths,
   bounded early exit, certificates, and jobs-independence of every
   verdict. *)

open Ftr_graph
open Ftr_core

let graph_print g =
  Format.asprintf "n=%d edges=%a" (Graph.n g)
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    (Graph.edges g)

let chorded_cycle_gen ~nmin ~nmax =
  QCheck.Gen.(
    let* n = int_range nmin nmax in
    let* extra = int_range 0 n in
    let* seed = int_range 0 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let chords =
      List.init extra (fun _ -> (Random.State.int rng n, Random.State.int rng n))
    in
    let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
    return (Graph.of_edges ~n (cycle @ chords)))

let routing_of g =
  let t = max 1 (Connectivity.vertex_connectivity g - 1) in
  (Kernel.make g ~t).Construction.routing

(* Kernel.make rejects complete graphs (no separating set exists). *)
let assume_not_complete g =
  let n = Graph.n g in
  QCheck.assume (List.length (Graph.edges g) < n * (n - 1) / 2)

(* ---------------- revolving-door enumeration ---------------- *)

let binom n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let acc = ref 1 in
    for i = 1 to k do
      acc := !acc * (n - k + i) / i
    done;
    !acc
  end

let test_gray_enumerates_all_subsets () =
  for n = 0 to 8 do
    for k = 0 to n do
      let seen = Hashtbl.create 64 in
      let current = Hashtbl.create 8 in
      let record () =
        let subset = List.sort compare (Hashtbl.fold (fun v () acc -> v :: acc) current []) in
        Alcotest.(check int)
          (Printf.sprintf "n=%d k=%d subset size" n k)
          k (List.length subset);
        Alcotest.(check bool)
          (Printf.sprintf "n=%d k=%d distinct" n k)
          false (Hashtbl.mem seen subset);
        Hashtbl.add seen subset ()
      in
      Tolerance.iter_combinations_gray ~n ~k
        ~first:(fun c ->
          Array.iter
            (fun v ->
              Alcotest.(check bool) "element in range" true (v >= 0 && v < n);
              Hashtbl.add current v ())
            c;
          record ())
        ~swap:(fun ~removed ~added ->
          Alcotest.(check bool)
            (Printf.sprintf "n=%d k=%d removes a member" n k)
            true (Hashtbl.mem current removed);
          Alcotest.(check bool)
            (Printf.sprintf "n=%d k=%d adds a non-member" n k)
            false (Hashtbl.mem current added);
          Hashtbl.remove current removed;
          Hashtbl.add current added ();
          record ());
      Alcotest.(check int)
        (Printf.sprintf "n=%d k=%d counts C(n,k)" n k)
        (binom n k) (Hashtbl.length seen)
    done
  done

(* ---------------- equivalence of the three diameter paths -------- *)

let arb_routing_with_faults =
  QCheck.make
    ~print:(fun (g, faults) ->
      Printf.sprintf "%s F={%s}" (graph_print g)
        (String.concat "," (List.map string_of_int faults)))
    QCheck.Gen.(
      let* g = chorded_cycle_gen ~nmin:4 ~nmax:12 in
      let n = Graph.n g in
      let* fault_seed = int_range 0 1_000_000 in
      let rng = Random.State.make [| fault_seed |] in
      let f = Random.State.int rng (min 5 n) in
      let faults =
        List.sort_uniq compare (List.init f (fun _ -> Random.State.int rng n))
      in
      return (g, faults))

let prop_three_paths_agree =
  QCheck.Test.make ~name:"naive = compiled = incremental surviving diameter"
    ~count:60 arb_routing_with_faults
    (fun (g, faults) ->
      assume_not_complete g;
      let routing = routing_of g in
      let n = Graph.n g in
      let naive = Surviving.diameter routing ~faults:(Bitset.of_list n faults) in
      let compiled = Surviving.compile routing in
      let batch = Surviving.diameter_compiled compiled ~faults:(Bitset.of_list n faults) in
      let ev = Surviving.evaluator compiled in
      Surviving.set_faults ev faults;
      let incremental = Surviving.evaluator_diameter ev in
      naive = batch && naive = incremental)

let prop_incremental_survives_churn =
  QCheck.Test.make
    ~name:"evaluator agrees with naive after apply/revert churn" ~count:40
    arb_routing_with_faults
    (fun (g, faults) ->
      assume_not_complete g;
      let routing = routing_of g in
      let n = Graph.n g in
      let ev = Surviving.evaluator (Surviving.compile routing) in
      (* Apply one at a time, checking after each step; then revert in
         reverse order, checking again: hit counters must round-trip. *)
      let ok = ref true in
      let check applied =
        let naive =
          Surviving.diameter routing ~faults:(Bitset.of_list n applied)
        in
        if Surviving.evaluator_diameter ev <> naive then ok := false;
        if Surviving.faults ev <> List.sort compare applied then ok := false
      in
      let rec forward applied = function
        | [] -> ()
        | v :: rest ->
            Surviving.apply_fault ev v;
            let applied = v :: applied in
            check applied;
            forward applied rest
      in
      forward [] faults;
      let rec backward = function
        | [] -> ()
        | v :: rest ->
            Surviving.revert_fault ev v;
            check rest;
            backward rest
      in
      backward (List.rev faults);
      !ok && Surviving.fault_count ev = 0)

let prop_diameter_exceeds_consistent =
  QCheck.Test.make ~name:"diameter_exceeds = (diameter > bound)" ~count:40
    arb_routing_with_faults
    (fun (g, faults) ->
      assume_not_complete g;
      let routing = routing_of g in
      let n = Graph.n g in
      let ev = Surviving.evaluator (Surviving.compile routing) in
      Surviving.set_faults ev faults;
      let d = Surviving.evaluator_diameter ev in
      List.for_all
        (fun bound ->
          Surviving.diameter_exceeds ev ~bound
          = not (Metrics.distance_le d (Metrics.Finite bound)))
        (List.init (n + 2) (fun b -> b - 1)))

let test_apply_fault_guards () =
  let g = Families.cycle 6 in
  let ev = Surviving.evaluator (Surviving.compile (routing_of g)) in
  Surviving.apply_fault ev 2;
  Alcotest.check_raises "double apply"
    (Invalid_argument "Surviving.apply_fault: vertex already faulty") (fun () ->
      Surviving.apply_fault ev 2);
  Alcotest.check_raises "revert non-fault"
    (Invalid_argument "Surviving.revert_fault: vertex not faulty") (fun () ->
      Surviving.revert_fault ev 3);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Surviving.apply_fault: vertex out of range") (fun () ->
      Surviving.apply_fault ev 6)

(* ---------------- certificates ---------------- *)

let prop_certify_agrees_with_exhaustive =
  QCheck.Test.make ~name:"certify agrees with the exhaustive verdict" ~count:25
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:4 ~nmax:9))
    (fun g ->
      assume_not_complete g;
      let routing = routing_of g in
      let n = Graph.n g in
      let f = min 2 n in
      let v = Tolerance.exhaustive routing ~f in
      List.for_all
        (fun bound ->
          let cert = Tolerance.certify routing ~f ~bound in
          let expected = Tolerance.respects v ~bound in
          cert.Tolerance.holds = expected
          && (cert.Tolerance.holds || cert.Tolerance.counterexample <> None))
        (List.init (n + 1) (fun b -> b)))

let test_certify_counterexample_violates () =
  let g = Families.cycle 6 in
  let routing = routing_of g in
  let cert = Tolerance.certify routing ~f:2 ~bound:4 in
  Alcotest.(check bool) "cycle6 f=2 disconnects" false cert.Tolerance.holds;
  match cert.Tolerance.counterexample with
  | None -> Alcotest.fail "expected a counterexample"
  | Some w ->
      let ev = Surviving.evaluator (Surviving.compile routing) in
      Surviving.set_faults ev w;
      Alcotest.(check bool) "counterexample really violates" true
        (Surviving.diameter_exceeds ev ~bound:4)

(* ---------------- jobs-independence ---------------- *)

let test_exhaustive_jobs_independent () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  List.iter
    (fun f ->
      let base = Tolerance.exhaustive ~jobs:1 routing ~f in
      List.iter
        (fun jobs ->
          let v = Tolerance.exhaustive ~jobs routing ~f in
          Alcotest.(check bool)
            (Printf.sprintf "f=%d jobs=%d worst" f jobs)
            true
            (v.Tolerance.worst = base.Tolerance.worst);
          Alcotest.(check (list int))
            (Printf.sprintf "f=%d jobs=%d witness" f jobs)
            base.Tolerance.witness v.Tolerance.witness;
          Alcotest.(check int)
            (Printf.sprintf "f=%d jobs=%d sets_checked" f jobs)
            base.Tolerance.sets_checked v.Tolerance.sets_checked;
          Alcotest.(check bool)
            (Printf.sprintf "f=%d jobs=%d definitive" f jobs)
            base.Tolerance.definitive v.Tolerance.definitive)
        [ 2; 3; 4; 7 ])
    [ 1; 2 ]

let test_evaluate_jobs_independent () =
  let g = Families.torus 4 4 in
  let c = Kernel.make g ~t:2 in
  let verdict jobs =
    let rng = Random.State.make [| 97; 3 |] in
    Tolerance.evaluate ~rng ~jobs ~exhaustive_budget:50 ~samples:40
      ~attack_budget:200 c ~f:3
  in
  let base = verdict 1 and par = verdict 4 in
  Alcotest.(check bool) "worst" true (base.Tolerance.worst = par.Tolerance.worst);
  Alcotest.(check (list int)) "witness" base.Tolerance.witness par.Tolerance.witness;
  Alcotest.(check int) "sets_checked" base.Tolerance.sets_checked
    par.Tolerance.sets_checked

let test_attack_jobs_independent () =
  let g = Families.torus 5 5 in
  let c = Kernel.make g ~t:3 in
  let outcome jobs =
    let rng = Random.State.make [| 31; 7 |] in
    Attack.search
      ~config:{ Attack.default_config with Attack.budget = 300; restarts = 4 }
      ~jobs ~rng ~pools:c.Construction.pools c.Construction.routing ~f:3
  in
  let base = outcome 1 in
  List.iter
    (fun jobs ->
      let o = outcome jobs in
      Alcotest.(check bool) (Printf.sprintf "jobs=%d worst" jobs) true
        (o.Attack.worst = base.Attack.worst);
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d witness" jobs)
        base.Attack.witness o.Attack.witness;
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d raw witness" jobs)
        base.Attack.raw_witness o.Attack.raw_witness;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d evals" jobs)
        base.Attack.evals o.Attack.evals;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d restarts" jobs)
        base.Attack.restarts_used o.Attack.restarts_used)
    [ 2; 4 ]

let test_certify_jobs_independent () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  List.iter
    (fun bound ->
      let base = Tolerance.certify ~jobs:1 routing ~f:2 ~bound in
      List.iter
        (fun jobs ->
          let cert = Tolerance.certify ~jobs routing ~f:2 ~bound in
          Alcotest.(check bool)
            (Printf.sprintf "bound=%d jobs=%d holds" bound jobs)
            base.Tolerance.holds cert.Tolerance.holds;
          Alcotest.(check bool)
            (Printf.sprintf "bound=%d jobs=%d counterexample" bound jobs)
            true
            (cert.Tolerance.counterexample = base.Tolerance.counterexample);
          Alcotest.(check int)
            (Printf.sprintf "bound=%d jobs=%d sets" bound jobs)
            base.Tolerance.cert_sets_checked cert.Tolerance.cert_sets_checked)
        [ 3; 4 ])
    [ 1; 6 ]

(* ---------------- the edge-fault universe ---------------- *)

let arb_routing_with_edge_faults =
  QCheck.make
    ~print:(fun (g, nodes, edges) ->
      Printf.sprintf "%s F={%s} E={%s}" (graph_print g)
        (String.concat "," (List.map string_of_int nodes))
        (String.concat ","
           (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges)))
    QCheck.Gen.(
      let* g = chorded_cycle_gen ~nmin:4 ~nmax:12 in
      let n = Graph.n g in
      let all_edges = Graph.edges g in
      let m = List.length all_edges in
      let* fault_seed = int_range 0 1_000_000 in
      let rng = Random.State.make [| fault_seed |] in
      let k = Random.State.int rng (min 4 m) in
      let edges =
        List.sort_uniq compare
          (List.init k (fun _ -> List.nth all_edges (Random.State.int rng m)))
      in
      let nf = Random.State.int rng (min 3 n) in
      let nodes =
        List.sort_uniq compare (List.init nf (fun _ -> Random.State.int rng n))
      in
      return (g, nodes, edges))

(* The incremental edge-fault path must agree with the reference model:
   a link fault kills exactly the routes traversing it, endpoints stay
   alive. *)
let prop_edge_evaluator_agrees_with_fault_model =
  QCheck.Test.make ~name:"evaluator edge faults = Fault_model diameter"
    ~count:60 arb_routing_with_edge_faults
    (fun (g, nodes, edges) ->
      assume_not_complete g;
      let routing = routing_of g in
      let fm = Fault_model.create g in
      List.iter (Fault_model.fail_node fm) nodes;
      List.iter (fun (u, v) -> Fault_model.fail_edge fm u v) edges;
      let naive = Fault_model.diameter routing fm in
      let compiled = Surviving.compile routing in
      let ev = Surviving.evaluator compiled in
      let ids =
        List.map
          (fun (u, v) ->
            match Surviving.edge_id compiled u v with
            | Some id -> id
            | None -> QCheck.Test.fail_reportf "edge %d-%d has no id" u v)
          edges
      in
      Surviving.set_mixed_faults ev ~nodes ~edges:ids;
      Surviving.evaluator_diameter ev = naive)

(* Applying and reverting an edge fault is an exact round trip, and
   the guards reject double application. *)
let test_edge_apply_revert_guards () =
  let g = Families.cycle 8 in
  let routing = routing_of g in
  let compiled = Surviving.compile routing in
  let ev = Surviving.evaluator compiled in
  let before = Surviving.evaluator_diameter ev in
  Surviving.apply_edge_fault ev 0;
  Alcotest.(check bool) "edge 0 faulty" true (Surviving.is_edge_faulty ev 0);
  Alcotest.check_raises "double apply rejected"
    (Invalid_argument "Surviving.apply_edge_fault: edge already faulty")
    (fun () -> Surviving.apply_edge_fault ev 0);
  Surviving.revert_edge_fault ev 0;
  Alcotest.check_raises "double revert rejected"
    (Invalid_argument "Surviving.revert_edge_fault: edge not faulty")
    (fun () -> Surviving.revert_edge_fault ev 0);
  Alcotest.(check bool) "round trip restores diameter" true
    (Surviving.evaluator_diameter ev = before);
  Alcotest.(check int) "no edge faults left" 0 (Surviving.edge_fault_count ev)

(* exhaustive_edges must agree with a brute-force sweep through the
   reference model. *)
let test_exhaustive_edges_agrees_with_naive () =
  let g = Graph.of_edges ~n:7 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 6); (6, 0); (0, 3) ] in
  let routing = routing_of g in
  let all_edges = Graph.edges g in
  let f = 2 in
  let rec subsets k = function
    | [] -> if k = 0 then [ [] ] else []
    | e :: rest ->
        if k = 0 then [ [] ]
        else
          subsets k rest
          @ List.map (fun s -> e :: s) (subsets (k - 1) rest)
  in
  let sets =
    List.concat_map (fun k -> subsets k all_edges) [ 0; 1; 2 ]
    |> List.sort_uniq compare
  in
  let naive_worst =
    List.fold_left
      (fun acc set ->
        let fm = Fault_model.create g in
        List.iter (fun (u, v) -> Fault_model.fail_edge fm u v) set;
        Metrics.max_distance acc (Fault_model.diameter routing fm))
      (Metrics.Finite 0) sets
  in
  let v = Tolerance.exhaustive_edges routing ~f in
  Alcotest.(check bool) "worst matches brute force" true
    (v.Tolerance.e_worst = naive_worst);
  Alcotest.(check bool) "definitive" true v.Tolerance.e_definitive;
  Alcotest.(check int) "sets checked" (List.length sets) v.Tolerance.e_sets_checked;
  (* the witness replays to the reported worst *)
  let fm = Fault_model.create g in
  List.iter (fun (u, v) -> Fault_model.fail_edge fm u v) v.Tolerance.e_witness;
  Alcotest.(check bool) "witness replays" true
    (Fault_model.diameter routing fm = v.Tolerance.e_worst)

(* evaluator_diameter_over: the full target set reproduces the plain
   diameter; restricting targets can only shrink it; faulty targets
   are rejected. *)
let test_evaluator_diameter_over () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  let compiled = Surviving.compile routing in
  let n = Surviving.compiled_n compiled in
  let ev = Surviving.evaluator compiled in
  Surviving.apply_edge_fault ev 0;
  let all = Bitset.create n in
  for v = 0 to n - 1 do
    Bitset.add all v
  done;
  let full = Surviving.evaluator_diameter ev in
  Alcotest.(check bool) "all targets = plain diameter" true
    (Surviving.evaluator_diameter_over ev ~targets:all = full);
  let u, v = Surviving.edge_pair compiled 0 in
  let restricted = Bitset.create n in
  for x = 0 to n - 1 do
    if x <> u && x <> v then Bitset.add restricted x
  done;
  Alcotest.(check bool) "restricting targets never grows the diameter" true
    (Metrics.distance_le
       (Surviving.evaluator_diameter_over ev ~targets:restricted)
       full);
  Surviving.revert_edge_fault ev 0;
  Surviving.apply_fault ev u;
  Alcotest.check_raises "faulty target rejected"
    (Invalid_argument "Surviving.evaluator_diameter_over: target vertex is faulty")
    (fun () -> ignore (Surviving.evaluator_diameter_over ev ~targets:all))

(* ---------------- edge-universe jobs-independence ---------------- *)

let test_exhaustive_edges_jobs_independent () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  List.iter
    (fun f ->
      let base = Tolerance.exhaustive_edges ~jobs:1 routing ~f in
      List.iter
        (fun jobs ->
          let v = Tolerance.exhaustive_edges ~jobs routing ~f in
          Alcotest.(check bool)
            (Printf.sprintf "f=%d jobs=%d worst" f jobs)
            true
            (v.Tolerance.e_worst = base.Tolerance.e_worst);
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "f=%d jobs=%d witness" f jobs)
            base.Tolerance.e_witness v.Tolerance.e_witness;
          Alcotest.(check int)
            (Printf.sprintf "f=%d jobs=%d sets_checked" f jobs)
            base.Tolerance.e_sets_checked v.Tolerance.e_sets_checked)
        [ 2; 3; 4; 7 ])
    [ 1; 2 ]

let test_certify_edges_jobs_independent () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  List.iter
    (fun bound ->
      let base = Tolerance.certify_edges ~jobs:1 routing ~f:2 ~bound in
      List.iter
        (fun jobs ->
          let cert = Tolerance.certify_edges ~jobs routing ~f:2 ~bound in
          Alcotest.(check bool)
            (Printf.sprintf "bound=%d jobs=%d holds" bound jobs)
            base.Tolerance.e_holds cert.Tolerance.e_holds;
          Alcotest.(check bool)
            (Printf.sprintf "bound=%d jobs=%d counterexample" bound jobs)
            true
            (cert.Tolerance.e_counterexample = base.Tolerance.e_counterexample);
          Alcotest.(check int)
            (Printf.sprintf "bound=%d jobs=%d sets" bound jobs)
            base.Tolerance.e_cert_sets_checked cert.Tolerance.e_cert_sets_checked)
        [ 3; 4 ])
    [ 1; 6 ]

let test_random_edges_jobs_independent () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  let verdict jobs =
    let rng = Random.State.make [| 53; 11 |] in
    Tolerance.random_edges ~jobs routing ~f:3 ~rng ~samples:60
  in
  let base = verdict 1 in
  List.iter
    (fun jobs ->
      let v = verdict jobs in
      Alcotest.(check bool) (Printf.sprintf "jobs=%d worst" jobs) true
        (v.Tolerance.e_worst = base.Tolerance.e_worst);
      Alcotest.(check (list (pair int int)))
        (Printf.sprintf "jobs=%d witness" jobs)
        base.Tolerance.e_witness v.Tolerance.e_witness;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d sets" jobs)
        base.Tolerance.e_sets_checked v.Tolerance.e_sets_checked)
    [ 2; 4 ]

let test_reduction_jobs_independent () =
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  let base = Tolerance.reduction ~jobs:1 routing ~f:2 in
  List.iter
    (fun jobs ->
      let r = Tolerance.reduction ~jobs routing ~f:2 in
      Alcotest.(check int) (Printf.sprintf "jobs=%d sets" jobs)
        base.Tolerance.red_sets r.Tolerance.red_sets;
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d violations" jobs)
        base.Tolerance.red_violations r.Tolerance.red_violations;
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d first violation" jobs)
        true
        (r.Tolerance.red_first_violation = base.Tolerance.red_first_violation);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d worst edge" jobs)
        true
        (r.Tolerance.red_worst_edge = base.Tolerance.red_worst_edge);
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d worst proj" jobs)
        true
        (r.Tolerance.red_worst_proj = base.Tolerance.red_worst_proj))
    [ 2; 4 ];
  Alcotest.(check int) "no violations on the torus" 0 base.Tolerance.red_violations

let test_search_mixed_jobs_independent () =
  let g = Families.torus 5 5 in
  let c = Kernel.make g ~t:3 in
  List.iter
    (fun universe ->
      let outcome jobs =
        let rng = Random.State.make [| 31; 7 |] in
        Attack.search_mixed
          ~config:{ Attack.default_config with Attack.budget = 300; restarts = 4 }
          ~jobs ~rng ~pools:c.Construction.pools ~universe
          c.Construction.routing ~f:3
      in
      let label =
        match universe with `Mixed -> "mixed" | `Edges -> "edges"
      in
      let base = outcome 1 in
      List.iter
        (fun jobs ->
          let o = outcome jobs in
          Alcotest.(check bool) (Printf.sprintf "%s jobs=%d worst" label jobs)
            true
            (o.Attack.m_worst = base.Attack.m_worst);
          Alcotest.(check (list int))
            (Printf.sprintf "%s jobs=%d nodes" label jobs)
            base.Attack.m_nodes o.Attack.m_nodes;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s jobs=%d edges" label jobs)
            base.Attack.m_edges o.Attack.m_edges;
          Alcotest.(check (list int))
            (Printf.sprintf "%s jobs=%d raw nodes" label jobs)
            base.Attack.m_raw_nodes o.Attack.m_raw_nodes;
          Alcotest.(check (list (pair int int)))
            (Printf.sprintf "%s jobs=%d raw edges" label jobs)
            base.Attack.m_raw_edges o.Attack.m_raw_edges;
          Alcotest.(check int)
            (Printf.sprintf "%s jobs=%d evals" label jobs)
            base.Attack.m_evals o.Attack.m_evals;
          Alcotest.(check int)
            (Printf.sprintf "%s jobs=%d restarts" label jobs)
            base.Attack.m_restarts_used o.Attack.m_restarts_used)
        [ 2; 4 ];
      (* the edge universe must produce a node-free witness *)
      if universe = `Edges then
        Alcotest.(check (list int)) "edge universe: no node faults" []
          base.Attack.m_nodes)
    [ `Mixed; `Edges ]

(* ---------------- the bit-sliced evaluator ---------------- *)

(* A random instance plus a batch of up to [lane_capacity] mixed fault
   sets: the sliced engine must answer every lane exactly as the
   scalar evaluator answers the corresponding set. *)
let arb_sliced_batch =
  QCheck.make
    ~print:(fun (g, sets) ->
      Printf.sprintf "%s batch=%d [%s]" (graph_print g) (List.length sets)
        (String.concat "; "
           (List.map
              (fun (nodes, edges) ->
                Printf.sprintf "F={%s} E={%s}"
                  (String.concat "," (List.map string_of_int nodes))
                  (String.concat ","
                     (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges)))
              sets)))
    QCheck.Gen.(
      let* g = chorded_cycle_gen ~nmin:4 ~nmax:12 in
      let n = Graph.n g in
      let all_edges = Graph.edges g in
      let m = List.length all_edges in
      let* seed = int_range 0 1_000_000 in
      let rng = Random.State.make [| seed |] in
      let nsets = 1 + Random.State.int rng (Surviving.lane_capacity - 1) in
      let sets =
        List.init nsets (fun _ ->
            let nf = Random.State.int rng (min 4 n) in
            let nodes =
              List.sort_uniq compare (List.init nf (fun _ -> Random.State.int rng n))
            in
            let ef = Random.State.int rng (min 4 m) in
            let edges =
              List.sort_uniq compare
                (List.init ef (fun _ -> List.nth all_edges (Random.State.int rng m)))
            in
            (nodes, edges))
      in
      return (g, sets))

let prop_sliced_lanes_match_scalar =
  QCheck.Test.make ~name:"sliced lanes = per-set evaluator (nodes/edges/mixed)"
    ~count:40 arb_sliced_batch
    (fun (g, sets) ->
      assume_not_complete g;
      let routing = routing_of g in
      let compiled = Surviving.compile routing in
      QCheck.assume (Surviving.sliced_capable compiled);
      let ids =
        List.map
          (fun (nodes, edges) ->
            ( nodes,
              List.map
                (fun (u, v) ->
                  match Surviving.edge_id compiled u v with
                  | Some id -> id
                  | None -> QCheck.Test.fail_reportf "edge %d-%d has no id" u v)
                edges ))
          sets
      in
      let s = Surviving.sliced compiled in
      List.iter (fun (nodes, edges) -> ignore (Surviving.slice_add s ~nodes ~edges)) ids;
      let ev = Surviving.evaluator compiled in
      let scalar_of f =
        List.map
          (fun (nodes, edges) ->
            Surviving.set_mixed_faults ev ~nodes ~edges;
            f ())
          ids
      in
      let lanes_ok =
        List.for_all2 ( = )
          (Array.to_list (Surviving.slice_diameters s))
          (scalar_of (fun () -> Surviving.evaluator_diameter ev))
      in
      let exceeds_ok =
        List.for_all
          (fun bound ->
            let mask = Surviving.slice_exceeds s ~bound in
            List.for_all2 ( = )
              (List.init (List.length ids) (fun k -> mask land (1 lsl k) <> 0))
              (scalar_of (fun () -> Surviving.diameter_exceeds ev ~bound)))
          (List.init 7 (fun b -> b - 1))
      in
      lanes_ok && exceeds_ok)

let prop_exhaustive_engines_agree =
  QCheck.Test.make ~name:"exhaustive: sliced = scalar verdict (nodes and edges)"
    ~count:25
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:4 ~nmax:9))
    (fun g ->
      assume_not_complete g;
      let routing = routing_of g in
      let f = 2 in
      Tolerance.exhaustive ~engine:Tolerance.Sliced routing ~f
      = Tolerance.exhaustive ~engine:Tolerance.Scalar routing ~f
      && Tolerance.exhaustive_edges ~engine:Tolerance.Sliced routing ~f
         = Tolerance.exhaustive_edges ~engine:Tolerance.Scalar routing ~f)

(* Bit-identical verdicts AND byte-identical Obs counter JSON for the
   sliced path at jobs=1 vs jobs=8, across the full quick table (both
   universes, f=1 and f=2). Also covers the compile cache: the warm
   runs must report the same counters as the cold one. *)
let test_sliced_jobs_counters_identical () =
  let module Obs = Ftr_obs.Obs in
  let g = Families.torus 4 4 in
  let routing = routing_of g in
  let counters_after f =
    Obs.reset ();
    Obs.set_enabled true;
    let r = f () in
    let json = Obs.counters_json () in
    Obs.set_enabled false;
    Obs.reset ();
    (r, json)
  in
  List.iter
    (fun f ->
      let v1, j1 =
        counters_after (fun () -> Tolerance.exhaustive ~jobs:1 routing ~f)
      in
      let v8, j8 =
        counters_after (fun () -> Tolerance.exhaustive ~jobs:8 routing ~f)
      in
      Alcotest.(check bool) (Printf.sprintf "f=%d node verdict" f) true (v1 = v8);
      Alcotest.(check string) (Printf.sprintf "f=%d node counters" f) j1 j8;
      let e1, ej1 =
        counters_after (fun () -> Tolerance.exhaustive_edges ~jobs:1 routing ~f)
      in
      let e8, ej8 =
        counters_after (fun () -> Tolerance.exhaustive_edges ~jobs:8 routing ~f)
      in
      Alcotest.(check bool) (Printf.sprintf "f=%d edge verdict" f) true (e1 = e8);
      Alcotest.(check string) (Printf.sprintf "f=%d edge counters" f) ej1 ej8)
    [ 1; 2 ]

let () =
  let qcheck = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "gray",
        [
          Alcotest.test_case "revolving door enumerates C(n,k) subsets" `Quick
            test_gray_enumerates_all_subsets;
        ] );
      ( "equivalence",
        qcheck
          [
            prop_three_paths_agree;
            prop_incremental_survives_churn;
            prop_diameter_exceeds_consistent;
          ]
        @ [ Alcotest.test_case "apply/revert guards" `Quick test_apply_fault_guards ] );
      ( "edges",
        qcheck [ prop_edge_evaluator_agrees_with_fault_model ]
        @ [
            Alcotest.test_case "edge apply/revert guards" `Quick
              test_edge_apply_revert_guards;
            Alcotest.test_case "exhaustive_edges = brute force" `Quick
              test_exhaustive_edges_agrees_with_naive;
            Alcotest.test_case "restricted diameter" `Quick
              test_evaluator_diameter_over;
          ] );
      ( "certificates",
        qcheck [ prop_certify_agrees_with_exhaustive ]
        @ [
            Alcotest.test_case "counterexample violates" `Quick
              test_certify_counterexample_violates;
          ] );
      ( "sliced",
        qcheck [ prop_sliced_lanes_match_scalar; prop_exhaustive_engines_agree ]
        @ [
            Alcotest.test_case "jobs1 = jobs8 verdicts and counters" `Quick
              test_sliced_jobs_counters_identical;
          ] );
      ( "determinism",
        [
          Alcotest.test_case "exhaustive jobs-independent" `Quick
            test_exhaustive_jobs_independent;
          Alcotest.test_case "evaluate jobs-independent" `Slow
            test_evaluate_jobs_independent;
          Alcotest.test_case "attack jobs-independent" `Slow
            test_attack_jobs_independent;
          Alcotest.test_case "certify jobs-independent" `Quick
            test_certify_jobs_independent;
          Alcotest.test_case "exhaustive_edges jobs-independent" `Quick
            test_exhaustive_edges_jobs_independent;
          Alcotest.test_case "certify_edges jobs-independent" `Quick
            test_certify_edges_jobs_independent;
          Alcotest.test_case "random_edges jobs-independent" `Quick
            test_random_edges_jobs_independent;
          Alcotest.test_case "reduction jobs-independent" `Quick
            test_reduction_jobs_independent;
          Alcotest.test_case "search_mixed jobs-independent" `Slow
            test_search_mixed_jobs_independent;
        ] );
    ]
