open Ftr_graph
open Ftr_core

let test_ecube_paths () =
  let c = Hypercube_routing.ecube 3 in
  let r = c.Construction.routing in
  (* 0 -> 7 fixes bits 0, 1, 2 in order: 0,1,3,7 *)
  (match Routing.find r 0 7 with
  | Some p -> Alcotest.(check (list int)) "ascending bit fixes" [ 0; 1; 3; 7 ] (Path.to_list p)
  | None -> Alcotest.fail "missing route");
  (* 7 -> 0 also ascending: 7,6,4,0 *)
  match Routing.find r 7 0 with
  | Some p -> Alcotest.(check (list int)) "reverse direction" [ 7; 6; 4; 0 ] (Path.to_list p)
  | None -> Alcotest.fail "missing route"

let test_ecube_is_shortest () =
  let c = Hypercube_routing.ecube 4 in
  Alcotest.(check (float 1e-9)) "stretch 1" 1.0 (Routing.stretch c.Construction.routing)

let test_all_pairs_routed () =
  let c = Hypercube_routing.ecube 3 in
  Alcotest.(check int) "8*7 routes" 56 (Routing.route_count c.Construction.routing);
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ())

let test_bidirectional_symmetric () =
  let c = Hypercube_routing.ecube_bidirectional 3 in
  Alcotest.(check bool) "valid (incl. symmetry)" true
    (Routing.validate c.Construction.routing = Ok ())

let test_measured_bounds_q3 () =
  (* The numbers the introduction cites for tailored constructions are
     2 (uni) and 3 (bi); e-cube happens to achieve exactly those on Q3
     (verified exhaustively over all fault sets of size <= 2). *)
  let uni = Hypercube_routing.ecube 3 in
  let v = Tolerance.exhaustive uni.Construction.routing ~f:2 in
  Alcotest.(check bool) "uni within 2" true (Tolerance.respects v ~bound:2);
  let bi = Hypercube_routing.ecube_bidirectional 3 in
  let vb = Tolerance.exhaustive bi.Construction.routing ~f:2 in
  Alcotest.(check bool) "bi within 3" true (Tolerance.respects vb ~bound:3)

let test_graph_of () =
  let c = Hypercube_routing.ecube 4 in
  Alcotest.(check bool) "Q4" true
    (Graph.equal (Hypercube_routing.graph_of c) (Families.hypercube 4))

let () =
  Alcotest.run "hypercube_routing"
    [
      ( "hypercube_routing",
        [
          Alcotest.test_case "ecube paths" `Quick test_ecube_paths;
          Alcotest.test_case "shortest" `Quick test_ecube_is_shortest;
          Alcotest.test_case "all pairs" `Quick test_all_pairs_routed;
          Alcotest.test_case "bidirectional symmetric" `Quick test_bidirectional_symmetric;
          Alcotest.test_case "measured bounds on Q3" `Quick test_measured_bounds_q3;
          Alcotest.test_case "graph_of" `Quick test_graph_of;
        ] );
    ]
