open Ftr_analysis

let quick_ctx = Experiments.default_context ~seed:42 ~quick:true ()

let test_registry () =
  Alcotest.(check int) "26 experiments" 26 (List.length Experiments.ids);
  List.iter
    (fun id ->
      Alcotest.(check bool) (id ^ " described") true
        (String.length (Experiments.describe id) > 0))
    Experiments.ids

(* Unknown ids fail with a diagnostic Invalid_argument that names the
   bad id, not a bare Not_found. *)
let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_unknown_id () =
  let check_unknown name f =
    match f () with
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
    | exception Invalid_argument msg ->
        Alcotest.(check bool) (name ^ " names the bad id") true
          (contains_substring msg "E99")
  in
  check_unknown "describe" (fun () -> ignore (Experiments.describe "E99"));
  check_unknown "run" (fun () -> ignore (Experiments.run quick_ctx "E99"))

let test_no_violations_in_core_claims () =
  (* The cheapest theorem experiments, end to end. *)
  List.iter
    (fun id ->
      let table = Experiments.run quick_ctx id in
      Alcotest.(check bool) (id ^ " has rows") true (List.length table.Table.rows > 0);
      Alcotest.(check (list string)) (id ^ " no violations") []
        (List.concat_map
           (fun row -> List.filter (fun c -> c = "VIOLATION") row)
           table.Table.rows))
    [ "E2"; "E5"; "E10"; "E12" ]

let test_e8_bound_always_met () =
  let table = Experiments.run quick_ctx "E8" in
  List.iter
    (fun row ->
      Alcotest.(check string) "Lemma 15 met" "ok" (List.nth row 5))
    table.Table.rows

let test_figures_without_outdir () =
  let table = Experiments.run quick_ctx "F1" in
  Alcotest.(check int) "one row" 1 (List.length table.Table.rows)

let test_figures_with_outdir () =
  let dir = Filename.temp_file "ftr" "" in
  Sys.remove dir;
  let ctx = Experiments.default_context ~seed:42 ~quick:true ~out_dir:dir () in
  let table = Experiments.run ctx "F3" in
  let file = List.nth (List.hd table.Table.rows) 3 in
  Alcotest.(check bool) "file written" true (Sys.file_exists file);
  let ic = open_in file in
  let line = input_line ic in
  close_in ic;
  Alcotest.(check string) "dot preamble" "graph bipolar {" line

let test_deterministic () =
  let a = Experiments.run quick_ctx "E2" in
  let b = Experiments.run quick_ctx "E2" in
  Alcotest.(check bool) "same rows" true (a.Table.rows = b.Table.rows)

let test_all_quick_experiments_clean () =
  (* The whole harness in quick mode: no VIOLATION cell anywhere. *)
  List.iter
    (fun (id, table) ->
      List.iter
        (fun row ->
          List.iter
            (fun cell ->
              if cell = "VIOLATION" then
                Alcotest.failf "%s: %s" id (String.concat " | " row))
            row)
        table.Table.rows)
    (Experiments.all quick_ctx)

let test_jobs_bit_identical () =
  (* The whole quick experiment table must not depend on the worker
     count: every cell of every row of every experiment is identical
     between a sequential and a 4-domain run. *)
  let tables jobs = Experiments.all ~jobs quick_ctx in
  let seq = tables 1 and par = tables 4 in
  Alcotest.(check int) "same experiment count" (List.length seq) (List.length par);
  List.iter2
    (fun (id1, (t1 : Table.t)) (id2, (t2 : Table.t)) ->
      Alcotest.(check string) "same id" id1 id2;
      Alcotest.(check bool) (id1 ^ " identical rows") true (t1.Table.rows = t2.Table.rows))
    seq par

let () =
  Alcotest.run "experiments"
    [
      ( "experiments",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "unknown id" `Quick test_unknown_id;
          Alcotest.test_case "core claims clean" `Slow test_no_violations_in_core_claims;
          Alcotest.test_case "E8 bound met" `Quick test_e8_bound_always_met;
          Alcotest.test_case "figure no outdir" `Quick test_figures_without_outdir;
          Alcotest.test_case "figure with outdir" `Quick test_figures_with_outdir;
          Alcotest.test_case "deterministic" `Slow test_deterministic;
          Alcotest.test_case "all quick experiments clean" `Slow test_all_quick_experiments_clean;
          Alcotest.test_case "jobs=1 and jobs=4 bit-identical" `Slow
            test_jobs_bit_identical;
        ] );
    ]
