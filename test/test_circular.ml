open Ftr_graph
open Ftr_core

let test_required_k () =
  Alcotest.(check int) "even t" 3 (Circular.required_k ~t:2);
  Alcotest.(check int) "odd t" 3 (Circular.required_k ~t:1);
  Alcotest.(check int) "t=4" 5 (Circular.required_k ~t:4);
  Alcotest.(check int) "t=3" 5 (Circular.required_k ~t:3)

let test_structure () =
  let g = Families.torus 7 7 in
  let m = Independent.greedy g in
  let c = Circular.make ~m g ~t:3 in
  Alcotest.(check bool) "valid routing" true (Routing.validate c.Construction.routing = Ok ());
  Alcotest.(check (list int)) "concentrator" m c.Construction.concentrator;
  let claim = List.hd c.Construction.claims in
  Alcotest.(check int) "bound 6" 6 claim.Construction.diameter_bound;
  Alcotest.(check int) "f = t" 3 claim.Construction.max_faults

let test_rejects_small_m () =
  let g = Families.torus 7 7 in
  Alcotest.(check bool) "undersized rejected" true
    (match Circular.make ~m:[ 0 ] g ~t:3 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rejects_non_neighborhood_set () =
  let g = Families.cycle 12 in
  Alcotest.check_raises "adjacent members"
    (Invalid_argument "Circular.make: M is not a neighborhood set") (fun () ->
      ignore (Circular.make ~m:[ 0; 1; 6 ] g ~t:1))

let test_exhaustive_cycle () =
  (* cycle 12, t=1, K=4: exhaust all single faults *)
  let g = Families.cycle 12 in
  let c = Circular.make g ~t:1 in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 6" true (Tolerance.respects v ~bound:6);
  Alcotest.(check bool) "definitive" true v.Tolerance.definitive

let test_exhaustive_ccc3_pairs () =
  (* ccc(3): t = 2; all fault pairs. *)
  let g = Families.ccc 3 in
  let m = Independent.greedy g in
  if List.length m >= Circular.required_k ~t:2 then begin
    let c = Circular.make ~m g ~t:2 in
    let v = Tolerance.exhaustive c.Construction.routing ~f:2 in
    Alcotest.(check bool) "within 6" true (Tolerance.respects v ~bound:6)
  end

let test_outside_nodes_route_to_all_rings () =
  let g = Families.cycle 12 in
  let m = [ 0; 3; 6; 9 ] in
  let c = Circular.make ~m g ~t:1 in
  let r = c.Construction.routing in
  (* vertex 0 is in M (outside Gamma): must have routes into every
     ring's neighborhood *)
  List.iter
    (fun mi ->
      let gamma = Array.to_list (Graph.neighbors g mi) in
      let reached = List.filter (fun y -> Routing.mem r 0 y) gamma in
      Alcotest.(check bool)
        (Printf.sprintf "0 reaches Gamma(%d)" mi)
        true
        (List.length reached >= 2))
    m

let test_fringe_windows () =
  (* x in Gamma_i must have routes to the next ceil(K/2)-1 rings and
     not to itself-ring targets beyond edges. *)
  let g = Families.cycle 12 in
  let m = [ 0; 3; 6; 9 ] in
  let c = Circular.make ~m g ~t:1 in
  let r = c.Construction.routing in
  (* 1 is in Gamma_0 = {1, 11}; window = 1: routes to Gamma_1 = {2,4} *)
  Alcotest.(check bool) "1 -> Gamma_1 member" true
    (Routing.mem r 1 2 || Routing.mem r 1 4)

let test_window_override () =
  let g = Families.ccc 4 in
  let m = Independent.greedy g in
  let narrow = Circular.make ~m ~window:1 g ~t:2 in
  let wide = Circular.make ~m g ~t:2 in
  Alcotest.(check bool) "fewer routes" true
    (Routing.route_count narrow.Construction.routing
    < Routing.route_count wide.Construction.routing);
  Alcotest.(check bool) "still valid" true
    (Routing.validate narrow.Construction.routing = Ok ());
  (match narrow.Construction.structure with
  | Construction.Neighborhood { window; _ } -> Alcotest.(check int) "window" 1 window
  | _ -> Alcotest.fail "structure");
  Alcotest.(check bool) "out of range rejected" true
    (match Circular.make ~m ~window:99 g ~t:2 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_greedy_default () =
  let g = Families.cycle 15 in
  let c = Circular.make g ~t:1 in
  Alcotest.(check int) "greedy K=5" 5 (List.length c.Construction.concentrator)

let () =
  Alcotest.run "circular"
    [
      ( "circular",
        [
          Alcotest.test_case "required_k" `Quick test_required_k;
          Alcotest.test_case "structure" `Quick test_structure;
          Alcotest.test_case "rejects small M" `Quick test_rejects_small_m;
          Alcotest.test_case "rejects bad M" `Quick test_rejects_non_neighborhood_set;
          Alcotest.test_case "exhaustive cycle" `Quick test_exhaustive_cycle;
          Alcotest.test_case "exhaustive ccc3" `Slow test_exhaustive_ccc3_pairs;
          Alcotest.test_case "outside coverage" `Quick test_outside_nodes_route_to_all_rings;
          Alcotest.test_case "fringe windows" `Quick test_fringe_windows;
          Alcotest.test_case "window override" `Quick test_window_override;
          Alcotest.test_case "greedy default" `Quick test_greedy_default;
        ] );
    ]
