open Ftr_graph

let test_bfs_cycle () =
  let g = Families.cycle 6 in
  let dist = Traversal.bfs g 0 in
  Alcotest.(check (array int)) "distances" [| 0; 1; 2; 3; 2; 1 |] dist

let test_bfs_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1) ] in
  let dist = Traversal.bfs g 0 in
  Alcotest.(check (array int)) "unreachable -1" [| 0; 1; -1; -1 |] dist

let test_bfs_allowed () =
  let g = Families.cycle 6 in
  let dist = Traversal.bfs g ~allowed:(fun v -> v <> 1) 0 in
  Alcotest.(check int) "must go the long way" 3 dist.(3);
  Alcotest.(check int) "blocked" (-1) dist.(1)

let test_parents_consistent () =
  let g = Families.grid 3 3 in
  let dist, parent = Traversal.bfs_parents g 0 in
  Graph.iter_vertices
    (fun v ->
      if v <> 0 && dist.(v) >= 0 then begin
        Alcotest.(check int) "parent one closer" (dist.(v) - 1) dist.(parent.(v));
        Alcotest.(check bool) "parent adjacent" true (Graph.mem_edge g v parent.(v))
      end)
    g

let test_shortest_path () =
  let g = Families.cycle 8 in
  match Traversal.shortest_path g 0 3 with
  | None -> Alcotest.fail "expected a path"
  | Some p ->
      Alcotest.(check int) "length" 3 (Path.length p);
      Alcotest.(check bool) "valid" true (Path.is_valid_in g p);
      Alcotest.(check int) "src" 0 (Path.source p);
      Alcotest.(check int) "dst" 3 (Path.target p)

let test_shortest_path_none () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "no path" true (Traversal.shortest_path g 0 3 = None)

let test_distance () =
  let g = Families.hypercube 3 in
  Alcotest.(check (option int)) "antipodal" (Some 3) (Traversal.distance g 0 7);
  Alcotest.(check (option int)) "adjacent" (Some 1) (Traversal.distance g 0 1);
  Alcotest.(check (option int)) "self" (Some 0) (Traversal.distance g 0 0)

let test_components () =
  let g = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (4, 5) ] in
  Alcotest.(check (list (list int)))
    "components" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ] (Traversal.components g)

let test_is_connected () =
  Alcotest.(check bool) "cycle" true (Traversal.is_connected (Families.cycle 5));
  Alcotest.(check bool) "two parts" false
    (Traversal.is_connected (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]));
  Alcotest.(check bool) "singleton" true (Traversal.is_connected (Graph.empty 1));
  Alcotest.(check bool) "empty" true (Traversal.is_connected (Graph.empty 0))

let test_is_connected_excluding () =
  let g = Families.path_graph 5 in
  Alcotest.(check bool) "cut middle" false
    (Traversal.is_connected_excluding g (Bitset.of_list 5 [ 2 ]));
  Alcotest.(check bool) "cut end" true
    (Traversal.is_connected_excluding g (Bitset.of_list 5 [ 0 ]));
  Alcotest.(check bool) "remove all but one" true
    (Traversal.is_connected_excluding g (Bitset.of_list 5 [ 0; 1; 2; 3 ]))

let test_component_of () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  Alcotest.(check (list int)) "component" [ 2; 3 ]
    (Bitset.elements (Traversal.component_of g 2))

let test_dfs_order () =
  let g = Families.path_graph 4 in
  Alcotest.(check (list int)) "preorder from 0" [ 0; 1; 2; 3 ] (Traversal.dfs_order g 0);
  Alcotest.(check int) "component only"
    2
    (List.length (Traversal.dfs_order (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]) 0))

let () =
  Alcotest.run "traversal"
    [
      ( "traversal",
        [
          Alcotest.test_case "bfs cycle" `Quick test_bfs_cycle;
          Alcotest.test_case "bfs disconnected" `Quick test_bfs_disconnected;
          Alcotest.test_case "bfs allowed" `Quick test_bfs_allowed;
          Alcotest.test_case "parents consistent" `Quick test_parents_consistent;
          Alcotest.test_case "shortest path" `Quick test_shortest_path;
          Alcotest.test_case "shortest path none" `Quick test_shortest_path_none;
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
          Alcotest.test_case "is_connected_excluding" `Quick test_is_connected_excluding;
          Alcotest.test_case "component_of" `Quick test_component_of;
          Alcotest.test_case "dfs order" `Quick test_dfs_order;
        ] );
    ]
