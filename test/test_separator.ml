open Ftr_graph

let test_is_separator () =
  let g = Families.path_graph 5 in
  Alcotest.(check bool) "middle vertex" true (Separator.is_separator g [ 2 ]);
  Alcotest.(check bool) "endpoint" false (Separator.is_separator g [ 0 ]);
  Alcotest.(check bool) "cycle needs two" false (Separator.is_separator (Families.cycle 6) [ 0 ]);
  Alcotest.(check bool) "two antipodal on cycle" true
    (Separator.is_separator (Families.cycle 6) [ 0; 3 ])

let test_is_separator_degenerate () =
  let g = Families.path_graph 3 in
  (* removing everything but one vertex leaves a single component *)
  Alcotest.(check bool) "nearly all" false (Separator.is_separator g [ 0; 1 ])

let test_separates () =
  let g = Families.cycle 6 in
  Alcotest.(check bool) "0,3 separate 1 from 5" true (Separator.separates g [ 0; 3 ] 1 5);
  Alcotest.(check bool) "same side" false (Separator.separates g [ 0; 3 ] 1 2)

let test_separates_rejects_member () =
  let g = Families.cycle 6 in
  Alcotest.check_raises "endpoint in separator"
    (Invalid_argument "Separator.separates: endpoint inside the separator") (fun () ->
      ignore (Separator.separates g [ 0; 3 ] 0 2))

let test_minimum () =
  let g = Families.hypercube 3 in
  match Separator.minimum g with
  | None -> Alcotest.fail "expected a separator"
  | Some m ->
      Alcotest.(check int) "size 3" 3 (List.length m);
      Alcotest.(check bool) "separates" true (Separator.is_separator g m)

let test_side_of () =
  let g = Families.path_graph 5 in
  let side = Separator.side_of g [ 2 ] 0 in
  Alcotest.(check (list int)) "left side" [ 0; 1 ] (Bitset.elements side);
  let side' = Separator.side_of g [ 2 ] 4 in
  Alcotest.(check (list int)) "right side" [ 3; 4 ] (Bitset.elements side')

let test_neighborhood_is_separator () =
  (* Gamma(v) separates v from the rest whenever the graph extends
     beyond the closed neighborhood: the basis of Section 4. *)
  let g = Families.torus 5 5 in
  let nbrs = Array.to_list (Graph.neighbors g 12) in
  Alcotest.(check bool) "neighborhood separates" true (Separator.is_separator g nbrs);
  Alcotest.(check bool) "isolates the center" true (Separator.separates g nbrs 12 0)

let () =
  Alcotest.run "separator"
    [
      ( "separator",
        [
          Alcotest.test_case "is_separator" `Quick test_is_separator;
          Alcotest.test_case "degenerate" `Quick test_is_separator_degenerate;
          Alcotest.test_case "separates" `Quick test_separates;
          Alcotest.test_case "rejects member endpoint" `Quick test_separates_rejects_member;
          Alcotest.test_case "minimum" `Quick test_minimum;
          Alcotest.test_case "side_of" `Quick test_side_of;
          Alcotest.test_case "neighborhood separates" `Quick test_neighborhood_is_separator;
        ] );
    ]
