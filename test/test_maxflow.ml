open Ftr_graph

let test_single_edge () =
  let net = Maxflow.create 2 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:7;
  Alcotest.(check int) "flow" 7 (Maxflow.max_flow net ~src:0 ~dst:1 ());
  Alcotest.(check int) "edge flow" 7 (Maxflow.flow_on net 0)

let test_two_disjoint_paths () =
  (* 0 -> {1,2} -> 3, each chain capacity 1 *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge net ~src:1 ~dst:3 ~cap:1;
  Maxflow.add_edge net ~src:0 ~dst:2 ~cap:1;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:1;
  Alcotest.(check int) "flow 2" 2 (Maxflow.max_flow net ~src:0 ~dst:3 ())

let test_bottleneck () =
  (* 0 ->(5) 1 ->(2) 2 ->(5) 3 *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:2;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:5;
  Alcotest.(check int) "bottleneck" 2 (Maxflow.max_flow net ~src:0 ~dst:3 ())

let test_limit () =
  let net = Maxflow.create 2 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:10;
  Alcotest.(check int) "capped" 3 (Maxflow.max_flow net ~src:0 ~dst:1 ~limit:3 ());
  (* continuing picks up where the previous call stopped *)
  Alcotest.(check int) "rest" 7 (Maxflow.max_flow net ~src:0 ~dst:1 ())

let test_no_path () =
  let net = Maxflow.create 3 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1;
  Alcotest.(check int) "zero" 0 (Maxflow.max_flow net ~src:0 ~dst:2 ())

let test_augmenting_path_needed () =
  (* Classic diamond where a greedy path must be partially undone:
     0->1 (1), 0->2 (1), 1->3 (1), 2->3 (1), 1->2 (1). *)
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:1;
  Maxflow.add_edge net ~src:0 ~dst:2 ~cap:1;
  Maxflow.add_edge net ~src:1 ~dst:3 ~cap:1;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:1;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1;
  Alcotest.(check int) "max flow 2" 2 (Maxflow.max_flow net ~src:0 ~dst:3 ())

let test_min_cut_side () =
  let net = Maxflow.create 4 in
  Maxflow.add_edge net ~src:0 ~dst:1 ~cap:5;
  Maxflow.add_edge net ~src:1 ~dst:2 ~cap:1;
  Maxflow.add_edge net ~src:2 ~dst:3 ~cap:5;
  ignore (Maxflow.max_flow net ~src:0 ~dst:3 ());
  let side = Maxflow.min_cut_side net ~src:0 in
  Alcotest.(check (list int)) "source side" [ 0; 1 ] (Bitset.elements side)

let test_conservation () =
  (* Random-ish network: inflow = outflow at internal nodes. *)
  let net = Maxflow.create 6 in
  let edges = [ (0,1,3); (0,2,2); (1,3,2); (2,3,1); (1,4,2); (2,4,2); (3,5,3); (4,5,2) ] in
  List.iter (fun (s, d, c) -> Maxflow.add_edge net ~src:s ~dst:d ~cap:c) edges;
  let v = Maxflow.max_flow net ~src:0 ~dst:5 () in
  Alcotest.(check int) "value" 5 v;
  let balance = Array.make 6 0 in
  List.iteri
    (fun i (s, d, _) ->
      let f = Maxflow.flow_on net i in
      Alcotest.(check bool) "non-negative" true (f >= 0);
      balance.(s) <- balance.(s) - f;
      balance.(d) <- balance.(d) + f)
    edges;
  Alcotest.(check int) "source out" (-v) balance.(0);
  Alcotest.(check int) "sink in" v balance.(5);
  List.iter (fun i -> Alcotest.(check int) "conserved" 0 balance.(i)) [ 1; 2; 3; 4 ]

let test_bad_args () =
  let net = Maxflow.create 2 in
  Alcotest.check_raises "src=dst" (Invalid_argument "Maxflow.max_flow: src = dst")
    (fun () -> ignore (Maxflow.max_flow net ~src:0 ~dst:0 ()));
  Alcotest.check_raises "neg cap" (Invalid_argument "Maxflow.add_edge: negative capacity")
    (fun () -> Maxflow.add_edge net ~src:0 ~dst:1 ~cap:(-1))

let () =
  Alcotest.run "maxflow"
    [
      ( "maxflow",
        [
          Alcotest.test_case "single edge" `Quick test_single_edge;
          Alcotest.test_case "two disjoint paths" `Quick test_two_disjoint_paths;
          Alcotest.test_case "bottleneck" `Quick test_bottleneck;
          Alcotest.test_case "limit & resume" `Quick test_limit;
          Alcotest.test_case "no path" `Quick test_no_path;
          Alcotest.test_case "augmenting path" `Quick test_augmenting_path_needed;
          Alcotest.test_case "min cut side" `Quick test_min_cut_side;
          Alcotest.test_case "flow conservation" `Quick test_conservation;
          Alcotest.test_case "bad arguments" `Quick test_bad_args;
        ] );
    ]
