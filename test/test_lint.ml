(* ftr-lint's own test coverage (DESIGN.md section 15): one trigger and
   one near-miss fixture per rule, the suppression contract, the
   rule-disable switch, the L3-vs-L7 interprocedural regression, the
   fingerprint line-drift stability, the result cache, and a golden
   test of the ftr-lint/2 JSON. *)

module Diagnostic = Ftr_lint.Diagnostic
module Rules = Ftr_lint.Rules
module Driver = Ftr_lint.Driver

(* Fixtures live under lint_fixtures/ and are typechecked in-process
   (they are not part of the build graph, so no .cmt exists); the L8
   fixtures only owe the exit-code contract when the fixture tree is
   declared a bin path. *)
let fixture_config =
  { Rules.default_config with Rules.bin_paths = [ "lint_fixtures" ] }

let fixture name = Filename.concat "lint_fixtures" name
let lint ?(config = fixture_config) name = Driver.lint_file ~config (fixture name)
let rules_of diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) diags

let check_rules msg expected (diags, _suppressed) =
  Alcotest.(check (list string)) msg expected (rules_of diags)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Every rule id must be disableable: the trigger fixture goes quiet
   when its rule is removed from [config.rules]. *)
let without rule =
  {
    fixture_config with
    Rules.rules = List.filter (fun r -> r <> rule) Rules.all_rules;
  }

let triggers =
  [
    ("L1", "l1_trigger.ml", 6);
    ("L2", "l2_trigger.ml", 5);
    ("L3", "l3_trigger.ml", 2);
    ("L3", "l3_chunk.ml", 1);
    ("L4", "l4_trigger.ml", 1);
    ("L4", "l4_bigarray.ml", 1);
    ("L5", "l5_trigger.ml", 2);
    ("L6", "l6_trigger.ml", 2);
    ("L7", "l7_trigger.ml", 1);
    ("L8", "l8_trigger.ml", 2);
  ]

let nearmisses =
  [
    "l1_nearmiss.ml"; "l2_nearmiss.ml"; "l3_nearmiss.ml"; "l4_nearmiss.ml";
    "l5_nearmiss.ml"; "l6_nearmiss.ml"; "l7_nearmiss.ml"; "l8_nearmiss.ml";
  ]

let test_triggers () =
  List.iter
    (fun (rule, file, count) ->
      check_rules file (List.init count (fun _ -> rule)) (lint file))
    triggers

let test_nearmisses () =
  List.iter (fun file -> check_rules file [] (lint file)) nearmisses

let test_rule_disable () =
  List.iter
    (fun (rule, file, _) ->
      check_rules
        (Printf.sprintf "%s off silences %s" rule file)
        []
        (lint ~config:(without rule) file))
    triggers

(* The acceptance regression: the helper-routed mutable capture in
   l7_trigger.ml is invisible to the syntactic L3 (no mutation appears
   inside the task's own body) and is caught by the interprocedural
   L7. *)
let test_l3_misses_l7_catches () =
  let only rule = { fixture_config with Rules.rules = [ rule ] } in
  check_rules "old L3 provably misses the helper route" []
    (lint ~config:(only "L3") "l7_trigger.ml");
  let diags, _ = lint ~config:(only "L7") "l7_trigger.ml" in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "L7" d.Diagnostic.rule;
      Alcotest.(check bool)
        "message names the helper" true
        (contains_substring d.Diagnostic.message "`bump`")
  | ds -> Alcotest.failf "expected 1 L7 diagnostic, got %d" (List.length ds)

(* L6's escape hatch: the same digest computation is flagged unordered
   and accepted once key-sorted (l6_nearmiss.ml), with the vouched
   commutative fold recorded as a justified suppression. *)
let test_l6_sort_discharges () =
  let diags, _ = lint "l6_trigger.ml" in
  Alcotest.(check bool)
    "digest sink flagged" true
    (List.exists
       (fun (d : Diagnostic.t) ->
         contains_substring d.Diagnostic.message "Digest.string")
       diags);
  let diags, suppressed = lint "l6_nearmiss.ml" in
  Alcotest.(check (list string)) "sorted version is clean" [] (rules_of diags);
  match suppressed with
  | [ s ] ->
      Alcotest.(check string) "vouched fold recorded" "L6"
        s.Diagnostic.diag.Diagnostic.rule;
      Alcotest.(check bool)
        "justification kept" true
        (contains_substring s.Diagnostic.justification "commutative")
  | ss -> Alcotest.failf "expected 1 suppression, got %d" (List.length ss)

let test_l4_containment_first () =
  (* The bounds comment in l4_trigger.ml must not rescue an unsafe op
     outside the containment files. *)
  let diags, _ = lint "l4_trigger.ml" in
  match diags with
  | [ d ] ->
      Alcotest.(check bool)
        "message names containment" true
        (contains_substring d.Diagnostic.message "outside the containment")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let contained =
  {
    fixture_config with
    Rules.unsafe_ok = [ "l4_allowed.ml"; "l4_uncommented.ml" ];
  }

let test_l4_proof_comment () =
  check_rules "bounds comment accepted" [] (lint ~config:contained "l4_allowed.ml");
  let diags, _ = lint ~config:contained "l4_uncommented.ml" in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "L4" d.Diagnostic.rule;
      Alcotest.(check bool)
        "message demands a proof comment" true
        (contains_substring d.Diagnostic.message "bounds")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

(* Bigarray unsafe accessors answer to [unsafe_bigarray_ok], not
   [unsafe_ok]: clearing a file for plain unsafe ops must not clear
   it for off-heap access, while the tight list (plus the fixture's
   bounds comment) silences the diagnostic. *)
let test_l4_bigarray_list () =
  (let diags, _ = lint "l4_bigarray.ml" in
   match diags with
   | [ d ] ->
       Alcotest.(check bool)
         "classified as Bigarray unsafe" true
         (contains_substring d.Diagnostic.message "Bigarray unsafe")
   | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  let cleared_plain =
    { fixture_config with Rules.unsafe_ok = [ "l4_bigarray.ml" ] }
  in
  check_rules "unsafe_ok does not cover Bigarray" [ "L4" ]
    (lint ~config:cleared_plain "l4_bigarray.ml");
  let cleared_bigarray =
    { fixture_config with Rules.unsafe_bigarray_ok = [ "l4_bigarray.ml" ] }
  in
  check_rules "bigarray list + bounds comment accepted" []
    (lint ~config:cleared_bigarray "l4_bigarray.ml")

let test_allow_justified () =
  let diags, suppressed = lint "allow_ok.ml" in
  Alcotest.(check (list string)) "nothing unsuppressed" [] (rules_of diags);
  match suppressed with
  | [ s ] ->
      Alcotest.(check string) "suppressed rule" "L1" s.Diagnostic.diag.Diagnostic.rule;
      Alcotest.(check string)
        "justification recorded" "fixture exercises a justified suppression"
        s.Diagnostic.justification
  | ss -> Alcotest.failf "expected 1 suppression, got %d" (List.length ss)

let test_allow_unjustified () =
  (* The bare allow is its own error (L0) and the L1 still fires. *)
  let diags, suppressed = lint "allow_unjustified.ml" in
  Alcotest.(check (list string)) "L0 plus the undimmed L1" [ "L0"; "L1" ]
    (rules_of diags);
  Alcotest.(check int) "nothing suppressed" 0 (List.length suppressed)

(* ---------------------------------------------------------------- *)
(* Fingerprints and the result cache                                 *)
(* ---------------------------------------------------------------- *)

let with_tmpdir f =
  let dir = Filename.temp_file "ftr_lint_test" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let read_file path =
  In_channel.with_open_text path In_channel.input_all

(* Inserting lines above a suppressed finding must not move its
   fingerprint: the hash covers the flagged line's text, not its
   number, so baselines survive line drift. *)
let test_fingerprint_stability () =
  with_tmpdir @@ fun dir ->
  let path = Filename.concat dir "allow_ok.ml" in
  let original = read_file (fixture "allow_ok.ml") in
  write_file path original;
  let fp_of (_, suppressed) =
    match suppressed with
    | [ (s : Diagnostic.suppressed) ] ->
        (s.diag.Diagnostic.fingerprint, s.diag.Diagnostic.line)
    | ss -> Alcotest.failf "expected 1 suppression, got %d" (List.length ss)
  in
  let fp1, line1 = fp_of (Driver.lint_file path) in
  write_file path ("(* drift *)\n(* more drift *)\n" ^ original);
  let fp2, line2 = fp_of (Driver.lint_file path) in
  Alcotest.(check bool) "finding moved down" true (line2 = line1 + 2);
  Alcotest.(check string) "fingerprint survives line drift" fp1 fp2;
  Alcotest.(check int) "fingerprint is 12 hex chars" 12 (String.length fp1)

(* Cache correctness: a warm run serves unchanged files from the cache
   and emits byte-identical JSON; an edited file is re-linted; a
   config change invalidates everything. *)
let test_cache_correctness () =
  with_tmpdir @@ fun dir ->
  let file_a = Filename.concat dir "a.ml" in
  let file_b = Filename.concat dir "b.ml" in
  let cache = Filename.concat dir "lint.cache" in
  write_file file_a "let safe xs = match xs with [] -> 0 | x :: _ -> x\n";
  write_file file_b "let first xs = List.hd xs\n";
  let run () = Driver.lint_paths ~cache_file:cache [ dir ] in
  let cold = run () in
  Alcotest.(check int) "cold run lints both" 0 cold.Diagnostic.files_cached;
  Alcotest.(check (list string)) "cold finds the L1" [ "L1" ]
    (rules_of cold.Diagnostic.diagnostics);
  let warm = run () in
  Alcotest.(check int) "warm run is all cache hits" 2
    warm.Diagnostic.files_cached;
  Alcotest.(check string) "cold and warm reports are byte-identical"
    (Diagnostic.to_json cold) (Diagnostic.to_json warm);
  write_file file_b "let first xs = List.hd xs\nlet second xs = List.tl xs\n";
  let edited = run () in
  Alcotest.(check int) "untouched file still served from cache" 1
    edited.Diagnostic.files_cached;
  Alcotest.(check (list string)) "edited file re-linted" [ "L1"; "L1" ]
    (rules_of edited.Diagnostic.diagnostics);
  let other_rules =
    { Rules.default_config with Rules.rules = [ "L2" ] }
  in
  let reconfigured =
    Driver.lint_paths ~config:other_rules ~cache_file:cache [ dir ]
  in
  Alcotest.(check int) "config change invalidates the cache" 0
    reconfigured.Diagnostic.files_cached

let test_golden_json () =
  let report = Driver.lint_paths ~config:fixture_config [ "lint_fixtures" ] in
  let golden = read_file (fixture "golden.json") in
  Alcotest.(check string) "ftr-lint/2 report" golden (Diagnostic.to_json report)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "triggers fire" `Quick test_triggers;
          Alcotest.test_case "near-misses stay quiet" `Quick test_nearmisses;
          Alcotest.test_case "disabling a rule silences it" `Quick test_rule_disable;
          Alcotest.test_case "L3 misses the helper route, L7 catches it" `Quick
            test_l3_misses_l7_catches;
          Alcotest.test_case "L6 discharged by an explicit sort" `Quick
            test_l6_sort_discharges;
          Alcotest.test_case "L4 containment precedes comments" `Quick
            test_l4_containment_first;
          Alcotest.test_case "L4 proof-comment contract" `Quick test_l4_proof_comment;
          Alcotest.test_case "L4 Bigarray containment list" `Quick
            test_l4_bigarray_list;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "justified allow suppresses" `Quick test_allow_justified;
          Alcotest.test_case "unjustified allow is an error" `Quick
            test_allow_unjustified;
        ] );
      ( "report",
        [
          Alcotest.test_case "fingerprints survive line drift" `Quick
            test_fingerprint_stability;
          Alcotest.test_case "result cache replays and invalidates" `Quick
            test_cache_correctness;
          Alcotest.test_case "golden ftr-lint/2 JSON" `Quick test_golden_json;
        ] );
    ]
