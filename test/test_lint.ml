(* ftr-lint's own test coverage (DESIGN.md section 10): one trigger and
   one near-miss fixture per rule, the suppression contract, the
   rule-disable switch, and a golden test of the ftr-lint/1 JSON. *)

module Diagnostic = Ftr_lint.Diagnostic
module Rules = Ftr_lint.Rules
module Driver = Ftr_lint.Driver

let fixture name = Filename.concat "lint_fixtures" name
let lint ?config name = Driver.lint_file ?config (fixture name)
let rules_of diags = List.map (fun (d : Diagnostic.t) -> d.Diagnostic.rule) diags

let check_rules msg expected (diags, _suppressed) =
  Alcotest.(check (list string)) msg expected (rules_of diags)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* Every rule id must be disableable: the trigger fixture goes quiet
   when its rule is removed from [config.rules]. *)
let without rule =
  {
    Rules.default_config with
    Rules.rules = List.filter (fun r -> r <> rule) Rules.all_rules;
  }

let triggers =
  [
    ("L1", "l1_trigger.ml", 6);
    ("L2", "l2_trigger.ml", 5);
    ("L3", "l3_trigger.ml", 2);
    ("L3", "l3_chunk.ml", 1);
    ("L4", "l4_trigger.ml", 1);
    ("L4", "l4_bigarray.ml", 1);
    ("L5", "l5_trigger.ml", 2);
  ]

let nearmisses =
  [
    "l1_nearmiss.ml"; "l2_nearmiss.ml"; "l3_nearmiss.ml"; "l4_nearmiss.ml";
    "l5_nearmiss.ml";
  ]

let test_triggers () =
  List.iter
    (fun (rule, file, count) ->
      check_rules file (List.init count (fun _ -> rule)) (lint file))
    triggers

let test_nearmisses () =
  List.iter (fun file -> check_rules file [] (lint file)) nearmisses

let test_rule_disable () =
  List.iter
    (fun (rule, file, _) ->
      check_rules
        (Printf.sprintf "%s off silences %s" rule file)
        []
        (lint ~config:(without rule) file))
    triggers

let test_l4_containment_first () =
  (* The bounds comment in l4_trigger.ml must not rescue an unsafe op
     outside the containment files. *)
  let diags, _ = lint "l4_trigger.ml" in
  match diags with
  | [ d ] ->
      Alcotest.(check bool)
        "message names containment" true
        (contains_substring d.Diagnostic.message "outside the containment")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

let contained =
  {
    Rules.default_config with
    Rules.unsafe_ok = [ "l4_allowed.ml"; "l4_uncommented.ml" ];
  }

let test_l4_proof_comment () =
  check_rules "bounds comment accepted" [] (lint ~config:contained "l4_allowed.ml");
  let diags, _ = lint ~config:contained "l4_uncommented.ml" in
  match diags with
  | [ d ] ->
      Alcotest.(check string) "rule" "L4" d.Diagnostic.rule;
      Alcotest.(check bool)
        "message demands a proof comment" true
        (contains_substring d.Diagnostic.message "bounds")
  | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds)

(* Bigarray unsafe accessors answer to [unsafe_bigarray_ok], not
   [unsafe_ok]: clearing a file for plain unsafe ops must not clear
   it for off-heap access, while the tight list (plus the fixture's
   bounds comment) silences the diagnostic. *)
let test_l4_bigarray_list () =
  (let diags, _ = lint "l4_bigarray.ml" in
   match diags with
   | [ d ] ->
       Alcotest.(check bool)
         "classified as Bigarray unsafe" true
         (contains_substring d.Diagnostic.message "Bigarray unsafe")
   | ds -> Alcotest.failf "expected 1 diagnostic, got %d" (List.length ds));
  let cleared_plain =
    { Rules.default_config with Rules.unsafe_ok = [ "l4_bigarray.ml" ] }
  in
  check_rules "unsafe_ok does not cover Bigarray" [ "L4" ]
    (lint ~config:cleared_plain "l4_bigarray.ml");
  let cleared_bigarray =
    { Rules.default_config with Rules.unsafe_bigarray_ok = [ "l4_bigarray.ml" ] }
  in
  check_rules "bigarray list + bounds comment accepted" []
    (lint ~config:cleared_bigarray "l4_bigarray.ml")

let test_allow_justified () =
  let diags, suppressed = lint "allow_ok.ml" in
  Alcotest.(check (list string)) "nothing unsuppressed" [] (rules_of diags);
  match suppressed with
  | [ s ] ->
      Alcotest.(check string) "suppressed rule" "L1" s.Diagnostic.diag.Diagnostic.rule;
      Alcotest.(check string)
        "justification recorded" "fixture exercises a justified suppression"
        s.Diagnostic.justification
  | ss -> Alcotest.failf "expected 1 suppression, got %d" (List.length ss)

let test_allow_unjustified () =
  (* The bare allow is its own error (L0) and the L1 still fires. *)
  let diags, suppressed = lint "allow_unjustified.ml" in
  Alcotest.(check (list string)) "L0 plus the undimmed L1" [ "L0"; "L1" ]
    (rules_of diags);
  Alcotest.(check int) "nothing suppressed" 0 (List.length suppressed)

let test_golden_json () =
  let report = Driver.lint_paths [ "lint_fixtures" ] in
  let golden =
    In_channel.with_open_text (fixture "golden.json") In_channel.input_all
  in
  Alcotest.(check string) "ftr-lint/1 report" golden (Diagnostic.to_json report)

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "triggers fire" `Quick test_triggers;
          Alcotest.test_case "near-misses stay quiet" `Quick test_nearmisses;
          Alcotest.test_case "disabling a rule silences it" `Quick test_rule_disable;
          Alcotest.test_case "L4 containment precedes comments" `Quick
            test_l4_containment_first;
          Alcotest.test_case "L4 proof-comment contract" `Quick test_l4_proof_comment;
          Alcotest.test_case "L4 Bigarray containment list" `Quick
            test_l4_bigarray_list;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "justified allow suppresses" `Quick test_allow_justified;
          Alcotest.test_case "unjustified allow is an error" `Quick
            test_allow_unjustified;
        ] );
      ("report", [ Alcotest.test_case "golden ftr-lint/1 JSON" `Quick test_golden_json ]);
    ]
