(* Cross-validation: the compiled batch evaluator must agree with the
   reference Surviving.diameter on every fault set, across routings of
   all shapes. *)

open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let agree_exhaustive routing ~f =
  let n = Graph.n (Routing.graph routing) in
  let compiled = Surviving.compile routing in
  Seq.iter
    (fun faults_list ->
      let faults = Bitset.of_list n faults_list in
      Alcotest.(check distance)
        (Printf.sprintf "F={%s}" (String.concat "," (List.map string_of_int faults_list)))
        (Surviving.diameter routing ~faults)
        (Surviving.diameter_compiled compiled ~faults))
    (Tolerance.subsets_up_to (List.init n Fun.id) f)

let test_kernel_agrees () =
  let c = Kernel.make (Families.hypercube 3) ~t:2 in
  agree_exhaustive c.Construction.routing ~f:2

let test_circular_agrees () =
  let c = Circular.make (Families.cycle 12) ~t:1 in
  agree_exhaustive c.Construction.routing ~f:2

let test_unidirectional_agrees () =
  let c = Bipolar.make_unidirectional (Families.cycle 12) ~t:1 in
  agree_exhaustive c.Construction.routing ~f:2

let test_sparse_partial_table () =
  (* A routing that covers only a few pairs: most vertices are
     isolated in the route graph, diameter infinite. *)
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Unidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  agree_exhaustive r ~f:2

let test_empty_table () =
  let g = Families.cycle 5 in
  let r = Routing.create g Routing.Bidirectional in
  agree_exhaustive r ~f:1

let test_random_routings_agree () =
  let rng = Random.State.make [| 31 |] in
  for _ = 1 to 10 do
    let n = 6 + Random.State.int rng 6 in
    let g = Families.cycle n in
    let r = Routing.create g Routing.Bidirectional in
    Routing.add_edge_routes r;
    (* a few random longer routes *)
    for _ = 1 to 3 do
      let src = Random.State.int rng n in
      let len = 2 + Random.State.int rng 2 in
      let vs = List.init (len + 1) (fun i -> (src + i) mod n) in
      try Routing.add r (Path.of_list vs) with Routing.Conflict _ -> ()
    done;
    agree_exhaustive r ~f:2
  done

(* Regression: a route stepping across a pair the graph's edge list
   does not contain must be rejected by [compile] with a descriptive
   [Invalid_argument], not escape as [Not_found]. Reachable via
   asymmetric adjacency lists: [mem_edge 1 0] holds (so [Routing.add]
   accepts the path) while [Graph.edges] omits (0, 1) (so the compiled
   edge index has no id for it). *)
let test_missing_edge_rejected () =
  let g = Graph.of_adj_lists 2 [| []; [ 0 ] |] in
  let r = Routing.create g Routing.Unidirectional in
  Routing.add r (Path.of_list [ 1; 0 ]);
  match Surviving.compile r with
  | _ -> Alcotest.fail "compile accepted a route over a missing edge"
  | exception Invalid_argument msg ->
      let mentions needle =
        let nl = String.length needle and ml = String.length msg in
        let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names the route" true (mentions "route 1->0");
      Alcotest.(check bool) "names the step" true (mentions "(1, 0)")
  | exception Not_found -> Alcotest.fail "compile leaked Not_found"

let () =
  Alcotest.run "surviving_compiled"
    [
      ( "agreement",
        [
          Alcotest.test_case "kernel" `Quick test_kernel_agrees;
          Alcotest.test_case "circular" `Quick test_circular_agrees;
          Alcotest.test_case "unidirectional" `Quick test_unidirectional_agrees;
          Alcotest.test_case "sparse table" `Quick test_sparse_partial_table;
          Alcotest.test_case "empty table" `Quick test_empty_table;
          Alcotest.test_case "random routings" `Quick test_random_routings_agree;
          Alcotest.test_case "missing edge rejected" `Quick test_missing_edge_rejected;
        ] );
    ]
