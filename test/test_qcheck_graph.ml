(* Property-based tests for the graph substrate. Generators build
   graphs that are connected by construction (a random cycle skeleton
   plus random chords), so connectivity-dependent properties are
   well-defined. *)

open Ftr_graph

let graph_print g =
  Format.asprintf "n=%d edges=%a" (Graph.n g)
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    (Graph.edges g)

(* Cycle on n vertices plus [extra] random chords: always 2-connected
   for n >= 3. *)
let chorded_cycle_gen =
  QCheck.Gen.(
    let* n = int_range 4 18 in
    let* extra = int_range 0 (n * 2) in
    let* seed = int_range 0 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let chords =
      List.init extra (fun _ ->
          (Random.State.int rng n, Random.State.int rng n))
    in
    let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
    return (Graph.of_edges ~n (cycle @ chords)))

let arb_graph = QCheck.make ~print:graph_print chorded_cycle_gen

let arb_graph_with_pair =
  QCheck.make
    ~print:(fun (g, u, v) -> Printf.sprintf "%s u=%d v=%d" (graph_print g) u v)
    QCheck.Gen.(
      let* g = chorded_cycle_gen in
      let n = Graph.n g in
      let* u = int_range 0 (n - 1) in
      let* v = int_range 0 (n - 1) in
      return (g, u, v))

let prop_bfs_symmetric =
  QCheck.Test.make ~name:"bfs distance is symmetric" ~count:100 arb_graph_with_pair
    (fun (g, u, v) -> Traversal.distance g u v = Traversal.distance g v u)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"distance triangle inequality" ~count:100
    (QCheck.make
       ~print:(fun (g, _, _, _) -> graph_print g)
       QCheck.Gen.(
         let* g = chorded_cycle_gen in
         let n = Graph.n g in
         let* a = int_range 0 (n - 1) in
         let* b = int_range 0 (n - 1) in
         let* c = int_range 0 (n - 1) in
         return (g, a, b, c)))
    (fun (g, a, b, c) ->
      match (Traversal.distance g a b, Traversal.distance g b c, Traversal.distance g a c) with
      | Some ab, Some bc, Some ac -> ac <= ab + bc
      | _ -> false (* chorded cycles are connected *))

let prop_menger =
  QCheck.Test.make ~name:"Menger: flow value = min separator size" ~count:60
    arb_graph_with_pair (fun (g, u, v) ->
      QCheck.assume (u <> v && not (Graph.mem_edge g u v));
      let flow = Disjoint_paths.st_connectivity g ~src:u ~dst:v () in
      let cut = Disjoint_paths.st_min_separator g ~src:u ~dst:v in
      List.length cut = flow && Separator.separates g cut u v)

let prop_st_paths_match_connectivity =
  QCheck.Test.make ~name:"st_paths family has maximum size and is disjoint" ~count:60
    arb_graph_with_pair (fun (g, u, v) ->
      QCheck.assume (u <> v);
      let k = Disjoint_paths.st_connectivity g ~src:u ~dst:v () in
      let paths = Disjoint_paths.st_paths g ~src:u ~dst:v () in
      let interiors = List.concat_map Path.interior paths in
      List.length paths = k
      && List.for_all (Path.is_valid_in g) paths
      && List.length interiors = List.length (List.sort_uniq compare interiors))

let prop_connectivity_le_min_degree =
  QCheck.Test.make ~name:"kappa <= min degree, and is_k_connected agrees" ~count:40
    arb_graph (fun g ->
      let k = Connectivity.vertex_connectivity g in
      k >= 2 (* chorded cycle *)
      && k <= Graph.min_degree g
      && Connectivity.is_k_connected g k
      && not (Connectivity.is_k_connected g (k + 1)))

let prop_min_cut_is_minimum_separator =
  QCheck.Test.make ~name:"min_vertex_cut has size kappa and separates" ~count:40 arb_graph
    (fun g ->
      match Connectivity.min_vertex_cut g with
      | None -> Graph.m g = Graph.n g * (Graph.n g - 1) / 2
      | Some cut ->
          List.length cut = Connectivity.vertex_connectivity g
          && Separator.is_separator g cut)

let prop_greedy_neighborhood_set =
  QCheck.Test.make ~name:"greedy neighborhood set: valid and meets Lemma 15" ~count:60
    arb_graph (fun g ->
      let m = Independent.greedy g in
      Independent.is_neighborhood_set g m
      && List.length m >= Independent.greedy_bound g)

let prop_girth_bound =
  QCheck.Test.make ~name:"girth <= n and >= 3" ~count:60 arb_graph (fun g ->
      match Metrics.girth g with
      | Some girth -> girth >= 3 && girth <= Graph.n g
      | None -> false (* a chorded cycle always has a cycle *))

let prop_diameter_vs_eccentricity =
  QCheck.Test.make ~name:"diameter = max eccentricity >= radius" ~count:40 arb_graph
    (fun g ->
      let diam = Metrics.diameter g in
      let rad = Metrics.radius g in
      let max_ecc =
        Graph.fold_vertices
          (fun v acc -> Metrics.max_distance acc (Metrics.eccentricity g v))
          g (Metrics.Finite 0)
      in
      diam = max_ecc && Metrics.distance_le rad diam)

let prop_two_trees_implies_weak =
  QCheck.Test.make ~name:"formal two-trees implies the prose version" ~count:60
    arb_graph_with_pair (fun (g, u, v) ->
      (not (Two_trees.verify g u v)) || Two_trees.holds_weak g u v)

let prop_bitset_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/elements roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_range 0 199))
    (fun xs ->
      let s = Bitset.of_list 200 xs in
      Bitset.elements s = List.sort_uniq compare xs)

let prop_path_rev_involution =
  QCheck.Test.make ~name:"path reverse is an involution" ~count:100
    QCheck.(int_range 2 20)
    (fun n ->
      let p = Path.of_list (List.init n Fun.id) in
      Path.equal p (Path.rev (Path.rev p))
      && Path.source (Path.rev p) = Path.target p)

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_bfs_symmetric;
        prop_triangle_inequality;
        prop_menger;
        prop_st_paths_match_connectivity;
        prop_connectivity_le_min_degree;
        prop_min_cut_is_minimum_separator;
        prop_greedy_neighborhood_set;
        prop_girth_bound;
        prop_diameter_vs_eccentricity;
        prop_two_trees_implies_weak;
        prop_bitset_roundtrip;
        prop_path_rev_involution;
      ]
  in
  Alcotest.run "qcheck_graph" [ ("properties", suite) ]
