open Ftr_graph
open Ftr_core
open Ftr_sim

let edge_net () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  Network.create r

let test_crash_set_at () =
  let events = Faults.crash_set_at ~at:5.0 [ 1; 2 ] in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check (float 0.0)) "time" 5.0 e.Faults.at;
      Alcotest.(check bool) "crash" true (e.Faults.kind = `Crash))
    events

let test_random_crashes_distinct () =
  let rng = Random.State.make [| 4 |] in
  let events = Faults.random_crashes ~rng ~n:10 ~count:5 ~window:(1.0, 2.0) in
  Alcotest.(check int) "five" 5 (List.length events);
  let nodes = List.map (fun e -> e.Faults.node) events in
  Alcotest.(check int) "distinct nodes" 5 (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun e ->
      Alcotest.(check bool) "in window" true (e.Faults.at >= 1.0 && e.Faults.at <= 2.0))
    events

let test_random_crashes_bounds () =
  let rng = Random.State.make [| 4 |] in
  Alcotest.check_raises "count > n" (Invalid_argument "Faults.random_crashes: count > n")
    (fun () -> ignore (Faults.random_crashes ~rng ~n:3 ~count:4 ~window:(0.0, 1.0)))

let test_schedule_applies () =
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net
    [
      { Faults.at = 1.0; node = 2; kind = `Crash };
      { Faults.at = 2.0; node = 2; kind = `Recover };
      { Faults.at = 3.0; node = 4; kind = `Crash };
    ];
  Sim.run ~until:1.5 sim;
  Alcotest.(check bool) "crashed at 1" true (Network.is_faulty net 2);
  Sim.run ~until:2.5 sim;
  Alcotest.(check bool) "recovered at 2" false (Network.is_faulty net 2);
  Sim.run sim;
  Alcotest.(check bool) "4 down at end" true (Network.is_faulty net 4);
  Alcotest.(check int) "one fault" 1 (Network.fault_count net)

let () =
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "crash_set_at" `Quick test_crash_set_at;
          Alcotest.test_case "random distinct" `Quick test_random_crashes_distinct;
          Alcotest.test_case "bounds" `Quick test_random_crashes_bounds;
          Alcotest.test_case "schedule applies" `Quick test_schedule_applies;
        ] );
    ]
