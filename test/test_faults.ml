open Ftr_graph
open Ftr_core
open Ftr_sim

let edge_net () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  Network.create r

let test_crash_set_at () =
  let events = Faults.crash_set_at ~at:5.0 [ 1; 2 ] in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter
    (fun e ->
      Alcotest.(check (float 0.0)) "time" 5.0 e.Faults.at;
      Alcotest.(check bool) "crash" true (e.Faults.kind = `Crash))
    events

let test_random_crashes_distinct () =
  let rng = Random.State.make [| 4 |] in
  let events = Faults.random_crashes ~rng ~n:10 ~count:5 ~window:(1.0, 2.0) in
  Alcotest.(check int) "five" 5 (List.length events);
  let nodes = List.map (fun e -> e.Faults.node) events in
  Alcotest.(check int) "distinct nodes" 5 (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun e ->
      Alcotest.(check bool) "in window" true (e.Faults.at >= 1.0 && e.Faults.at <= 2.0))
    events

let test_random_crashes_bounds () =
  let rng = Random.State.make [| 4 |] in
  Alcotest.check_raises "count > n" (Invalid_argument "Faults.random_crashes: count > n")
    (fun () -> ignore (Faults.random_crashes ~rng ~n:3 ~count:4 ~window:(0.0, 1.0)))

let test_churn_pairs () =
  let rng = Random.State.make [| 4 |] in
  let events = Faults.churn ~rng ~n:10 ~count:4 ~window:(1.0, 2.0) ~dwell:0.5 in
  Alcotest.(check int) "a crash and a recovery per node" 8 (List.length events);
  let crashes = List.filter (fun e -> e.Faults.kind = `Crash) events in
  let recoveries = List.filter (fun e -> e.Faults.kind = `Recover) events in
  Alcotest.(check int) "four crashes" 4 (List.length crashes);
  List.iter
    (fun c ->
      let r = List.find (fun r -> r.Faults.node = c.Faults.node) recoveries in
      Alcotest.(check (float 1e-9)) "recovery after dwell" (c.Faults.at +. 0.5)
        r.Faults.at;
      Alcotest.(check bool) "crash in window" true
        (c.Faults.at >= 1.0 && c.Faults.at <= 2.0))
    crashes;
  let times = List.map (fun e -> e.Faults.at) events in
  Alcotest.(check bool) "sorted by time" true (List.sort compare times = times);
  Alcotest.check_raises "count > n" (Invalid_argument "Faults.churn: count > n")
    (fun () ->
      ignore (Faults.churn ~rng ~n:3 ~count:4 ~window:(0.0, 1.0) ~dwell:1.0))

let test_churn_applies_and_heals () =
  let net = edge_net () in
  let sim = Sim.create () in
  let rng = Random.State.make [| 9 |] in
  Faults.schedule_on sim net
    (Faults.churn ~rng ~n:6 ~count:3 ~window:(1.0, 2.0) ~dwell:1.0);
  Sim.run sim;
  Alcotest.(check int) "everyone recovered" 0 (Network.fault_count net)

let test_witness_waves () =
  let events =
    Faults.witness_waves ~start:10.0 ~dwell:5.0 ~gap:2.0 [ [ 1; 2 ]; [ 4 ] ]
  in
  Alcotest.(check int) "two events per fault" 6 (List.length events);
  let at kind node =
    (List.find (fun e -> e.Faults.kind = kind && e.Faults.node = node) events)
      .Faults.at
  in
  Alcotest.(check (float 1e-9)) "wave 1 crashes at start" 10.0 (at `Crash 1);
  Alcotest.(check (float 1e-9)) "wave 1 recovers after dwell" 15.0 (at `Recover 2);
  Alcotest.(check (float 1e-9)) "wave 2 starts after the gap" 17.0 (at `Crash 4);
  Alcotest.(check (float 1e-9)) "wave 2 recovers" 22.0 (at `Recover 4);
  (* Driving the simulator with a wave schedule ends fully healed. *)
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net events;
  Sim.run ~until:12.0 sim;
  Alcotest.(check int) "wave 1 down" 2 (Network.fault_count net);
  Sim.run sim;
  Alcotest.(check int) "all recovered" 0 (Network.fault_count net)

let test_schedule_applies () =
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net
    [
      { Faults.at = 1.0; node = 2; kind = `Crash };
      { Faults.at = 2.0; node = 2; kind = `Recover };
      { Faults.at = 3.0; node = 4; kind = `Crash };
    ];
  Sim.run ~until:1.5 sim;
  Alcotest.(check bool) "crashed at 1" true (Network.is_faulty net 2);
  Sim.run ~until:2.5 sim;
  Alcotest.(check bool) "recovered at 2" false (Network.is_faulty net 2);
  Sim.run sim;
  Alcotest.(check bool) "4 down at end" true (Network.is_faulty net 4);
  Alcotest.(check int) "one fault" 1 (Network.fault_count net)

let () =
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "crash_set_at" `Quick test_crash_set_at;
          Alcotest.test_case "random distinct" `Quick test_random_crashes_distinct;
          Alcotest.test_case "bounds" `Quick test_random_crashes_bounds;
          Alcotest.test_case "churn pairs crash/recover" `Quick test_churn_pairs;
          Alcotest.test_case "churn applies and heals" `Quick
            test_churn_applies_and_heals;
          Alcotest.test_case "witness waves" `Quick test_witness_waves;
          Alcotest.test_case "schedule applies" `Quick test_schedule_applies;
        ] );
    ]
