open Ftr_graph
open Ftr_core
open Ftr_sim

let edge_net () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  Network.create r

let crashes es =
  List.filter_map
    (fun e -> match e.Faults.action with `Crash v -> Some (e.Faults.at, v) | _ -> None)
    es

let recoveries es =
  List.filter_map
    (fun e -> match e.Faults.action with `Recover v -> Some (e.Faults.at, v) | _ -> None)
    es

let downs es =
  List.filter_map
    (fun e ->
      match e.Faults.action with `LinkDown (u, v) -> Some (e.Faults.at, (u, v)) | _ -> None)
    es

let ups es =
  List.filter_map
    (fun e ->
      match e.Faults.action with `LinkUp (u, v) -> Some (e.Faults.at, (u, v)) | _ -> None)
    es

let sorted_by_time es =
  let times = List.map (fun e -> e.Faults.at) es in
  List.sort compare times = times

let test_crash_set_at () =
  let events = Faults.crash_set_at ~at:5.0 [ 1; 2 ] in
  Alcotest.(check int) "two events" 2 (List.length events);
  List.iter (fun e -> Alcotest.(check (float 0.0)) "time" 5.0 e.Faults.at) events;
  Alcotest.(check (list (pair (float 0.0) int))) "all crashes" [ (5.0, 1); (5.0, 2) ]
    (crashes events)

let test_link_set_at () =
  let events = Faults.link_set_at ~at:3.0 [ (0, 1); (4, 5) ] in
  Alcotest.(check int) "two events" 2 (List.length events);
  Alcotest.(check (list (pair (float 0.0) (pair int int))))
    "all downs"
    [ (3.0, (0, 1)); (3.0, (4, 5)) ]
    (downs events)

let test_random_crashes_distinct () =
  let rng = Random.State.make [| 4 |] in
  let events = Faults.random_crashes ~rng ~n:10 ~count:5 ~window:(1.0, 2.0) in
  Alcotest.(check int) "five" 5 (List.length events);
  let nodes = List.map snd (crashes events) in
  Alcotest.(check int) "distinct nodes" 5 (List.length (List.sort_uniq compare nodes));
  List.iter
    (fun e ->
      Alcotest.(check bool) "in window" true (e.Faults.at >= 1.0 && e.Faults.at <= 2.0))
    events

let test_random_crashes_bounds () =
  let rng = Random.State.make [| 4 |] in
  Alcotest.check_raises "count > n" (Invalid_argument "Faults.random_crashes: count > n")
    (fun () -> ignore (Faults.random_crashes ~rng ~n:3 ~count:4 ~window:(0.0, 1.0)))

let test_churn_pairs () =
  let rng = Random.State.make [| 4 |] in
  let events = Faults.churn ~rng ~n:10 ~count:4 ~window:(1.0, 2.0) ~dwell:0.5 in
  Alcotest.(check int) "a crash and a recovery per node" 8 (List.length events);
  let cs = crashes events and rs = recoveries events in
  Alcotest.(check int) "four crashes" 4 (List.length cs);
  List.iter
    (fun (at, v) ->
      let rat, _ = List.find (fun (_, rv) -> rv = v) rs in
      Alcotest.(check (float 1e-9)) "recovery after dwell" (at +. 0.5) rat;
      Alcotest.(check bool) "crash in window" true (at >= 1.0 && at <= 2.0))
    cs;
  Alcotest.(check bool) "sorted by time" true (sorted_by_time events);
  Alcotest.check_raises "count > n" (Invalid_argument "Faults.churn: count > n")
    (fun () -> ignore (Faults.churn ~rng ~n:3 ~count:4 ~window:(0.0, 1.0) ~dwell:1.0))

let test_churn_recovery_past_window_end () =
  (* A dwell longer than the window pushes every recovery past the
     window's end; the schedule must keep them (sorted), and a full
     run must still heal completely. *)
  let rng = Random.State.make [| 11 |] in
  let events = Faults.churn ~rng ~n:6 ~count:3 ~window:(1.0, 2.0) ~dwell:10.0 in
  let rs = recoveries events in
  Alcotest.(check int) "three recoveries" 3 (List.length rs);
  List.iter
    (fun (at, _) ->
      Alcotest.(check bool) "recovery lands past the window end" true (at > 2.0))
    rs;
  Alcotest.(check bool) "sorted by time" true (sorted_by_time events);
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net events;
  Sim.run ~until:2.0 sim;
  Alcotest.(check int) "all three down inside the window" 3 (Network.fault_count net);
  Sim.run sim;
  Alcotest.(check int) "healed past the window" 0 (Network.fault_count net)

let test_churn_applies_and_heals () =
  let net = edge_net () in
  let sim = Sim.create () in
  let rng = Random.State.make [| 9 |] in
  Faults.schedule_on sim net
    (Faults.churn ~rng ~n:6 ~count:3 ~window:(1.0, 2.0) ~dwell:1.0);
  Sim.run sim;
  Alcotest.(check int) "everyone recovered" 0 (Network.fault_count net)

let test_random_link_flaps () =
  let g = Families.cycle 6 in
  let rng = Random.State.make [| 7 |] in
  let events = Faults.random_link_flaps ~rng ~g ~count:3 ~window:(1.0, 2.0) ~dwell:0.5 in
  Alcotest.(check int) "a down and an up per link" 6 (List.length events);
  let ds = downs events and us = ups events in
  Alcotest.(check int) "three downs" 3 (List.length ds);
  Alcotest.(check int) "distinct links" 3
    (List.length (List.sort_uniq compare (List.map snd ds)));
  List.iter
    (fun (at, e) ->
      let uat, _ = List.find (fun (_, ue) -> ue = e) us in
      Alcotest.(check (float 1e-9)) "up after dwell" (at +. 0.5) uat;
      Alcotest.(check bool) "down in window" true (at >= 1.0 && at <= 2.0))
    ds;
  Alcotest.(check bool) "sorted by time" true (sorted_by_time events);
  Alcotest.check_raises "count > m"
    (Invalid_argument "Faults.random_link_flaps: count > edge count") (fun () ->
      ignore (Faults.random_link_flaps ~rng ~g ~count:7 ~window:(0.0, 1.0) ~dwell:1.0))

let test_mixed_churn_schedule () =
  let g = Families.cycle 6 in
  let rng = Random.State.make [| 21 |] in
  let events = Faults.mixed_churn ~rng ~g ~nodes:2 ~links:2 ~window:(1.0, 2.0) ~dwell:0.5 in
  Alcotest.(check int) "two events per fault" 8 (List.length events);
  Alcotest.(check int) "two crashes" 2 (List.length (crashes events));
  Alcotest.(check int) "two link downs" 2 (List.length (downs events));
  Alcotest.(check bool) "sorted by time" true (sorted_by_time events);
  (* Install on a network: both kinds of fault must show up and then
     heal completely. *)
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net events;
  Sim.run ~until:2.0 sim;
  Alcotest.(check bool) "some fault applied inside the window" true
    (Network.fault_count net + Network.link_fault_count net > 0);
  Sim.run sim;
  Alcotest.(check int) "nodes healed" 0 (Network.fault_count net);
  Alcotest.(check int) "links healed" 0 (Network.link_fault_count net)

let test_witness_waves () =
  let events =
    Faults.witness_waves ~start:10.0 ~dwell:5.0 ~gap:2.0 [ [ 1; 2 ]; [ 4 ] ]
  in
  Alcotest.(check int) "two events per fault" 6 (List.length events);
  let crash_at v = fst (List.find (fun (_, cv) -> cv = v) (crashes events)) in
  let recover_at v = fst (List.find (fun (_, rv) -> rv = v) (recoveries events)) in
  Alcotest.(check (float 1e-9)) "wave 1 crashes at start" 10.0 (crash_at 1);
  Alcotest.(check (float 1e-9)) "wave 1 recovers after dwell" 15.0 (recover_at 2);
  Alcotest.(check (float 1e-9)) "wave 2 starts after the gap" 17.0 (crash_at 4);
  Alcotest.(check (float 1e-9)) "wave 2 recovers" 22.0 (recover_at 4);
  (* Driving the simulator with a wave schedule ends fully healed. *)
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net events;
  Sim.run ~until:12.0 sim;
  Alcotest.(check int) "wave 1 down" 2 (Network.fault_count net);
  Sim.run sim;
  Alcotest.(check int) "all recovered" 0 (Network.fault_count net)

let test_link_waves () =
  let events = Faults.link_waves ~start:10.0 ~dwell:5.0 ~gap:2.0 [ [ (1, 0); (2, 3) ]; [ (4, 5) ] ] in
  Alcotest.(check int) "two events per link" 6 (List.length events);
  let down_at e = fst (List.find (fun (_, de) -> de = e) (downs events)) in
  let up_at e = fst (List.find (fun (_, ue) -> ue = e) (ups events)) in
  Alcotest.(check (float 1e-9)) "wave 1 down at start (normalised)" 10.0 (down_at (0, 1));
  Alcotest.(check (float 1e-9)) "wave 1 up after dwell" 15.0 (up_at (2, 3));
  Alcotest.(check (float 1e-9)) "wave 2 down after the gap" 17.0 (down_at (4, 5));
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net events;
  Sim.run ~until:12.0 sim;
  Alcotest.(check int) "wave 1 links down" 2 (Network.link_fault_count net);
  Alcotest.(check int) "no node faults" 0 (Network.fault_count net);
  Sim.run sim;
  Alcotest.(check int) "all links back" 0 (Network.link_fault_count net)

let test_schedule_applies () =
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net
    [
      { Faults.at = 1.0; action = `Crash 2 };
      { Faults.at = 2.0; action = `Recover 2 };
      { Faults.at = 3.0; action = `Crash 4 };
      { Faults.at = 3.0; action = `LinkDown (0, 1) };
    ];
  Sim.run ~until:1.5 sim;
  Alcotest.(check bool) "crashed at 1" true (Network.is_faulty net 2);
  Sim.run ~until:2.5 sim;
  Alcotest.(check bool) "recovered at 2" false (Network.is_faulty net 2);
  Sim.run sim;
  Alcotest.(check bool) "4 down at end" true (Network.is_faulty net 4);
  Alcotest.(check int) "one node fault" 1 (Network.fault_count net);
  Alcotest.(check bool) "link down at end" true (Network.is_link_faulty net 1 0)

let degrades es =
  List.filter_map
    (fun e ->
      match e.Faults.action with
      | `LinkDegrade (u, v, f) -> Some (e.Faults.at, (u, v), f)
      | _ -> None)
    es

let restores es =
  List.filter_map
    (fun e ->
      match e.Faults.action with
      | `LinkRestore (u, v) -> Some (e.Faults.at, (u, v))
      | _ -> None)
    es

let test_gray_flaps () =
  let rng = Random.State.make [| 11 |] in
  let g = Families.cycle 6 in
  let events =
    Faults.gray_flaps ~rng ~g ~count:3 ~window:(1.0, 2.0) ~dwell:0.5 ~factor:4.0
  in
  Alcotest.(check int) "degrade/restore pairs" 6 (List.length events);
  Alcotest.(check bool) "sorted" true (sorted_by_time events);
  let d = degrades events and r = restores events in
  Alcotest.(check int) "three degrades" 3 (List.length d);
  let d_links = List.sort compare (List.map (fun (_, l, _) -> l) d) in
  let r_links = List.sort compare (List.map snd r) in
  Alcotest.(check int) "distinct links" 3
    (List.length (List.sort_uniq compare d_links));
  Alcotest.(check bool) "every degrade restored" true (d_links = r_links);
  List.iter
    (fun (at, _, f) ->
      Alcotest.(check (float 0.0)) "factor carried" 4.0 f;
      Alcotest.(check bool) "in window" true (at >= 1.0 && at <= 2.0))
    d

let test_region () =
  let g = Families.cycle 6 in
  Alcotest.(check (list int)) "radius 0" [ 2 ] (Faults.region g ~center:2 ~radius:0);
  Alcotest.(check (list int)) "radius 1" [ 1; 2; 3 ]
    (Faults.region g ~center:2 ~radius:1);
  Alcotest.(check (list int)) "radius covers all" [ 0; 1; 2; 3; 4; 5 ]
    (Faults.region g ~center:2 ~radius:3);
  Alcotest.(check (list (pair int int))) "ball links" [ (1, 2); (2, 3) ]
    (Faults.region_links g ~center:2 ~radius:1)

let test_regional_waves () =
  let rng = Random.State.make [| 5 |] in
  let g = Families.torus 4 4 in
  let events =
    Faults.regional_waves ~rng ~g ~waves:2 ~radius:1 ~start:1.0 ~dwell:2.0
      ~gap:1.0
  in
  Alcotest.(check bool) "sorted" true (sorted_by_time events);
  let d = downs events and u = ups events in
  Alcotest.(check bool) "downs match ups" true
    (List.sort compare (List.map snd d) = List.sort compare (List.map snd u));
  (* wave 1 drops at t=1, recovers at t=3; wave 2 at t=4/6 *)
  let wave1 = List.filter (fun (at, _) -> at = 1.0) d in
  let wave2 = List.filter (fun (at, _) -> at = 4.0) d in
  Alcotest.(check int) "two wave fronts" (List.length d)
    (List.length wave1 + List.length wave2);
  (* a radius-1 ball in the 4x4 torus contains the 4 spokes *)
  Alcotest.(check bool) "correlated blast area" true (List.length wave1 >= 4)

let test_gray_schedule_applies () =
  let net = edge_net () in
  let sim = Sim.create () in
  Faults.schedule_on sim net
    [
      { Faults.at = 1.0; action = `LinkDegrade (0, 1, 8.0) };
      { Faults.at = 2.0; action = `LinkRestore (0, 1) };
    ];
  Sim.run ~until:1.5 sim;
  Alcotest.(check (float 0.0)) "degraded at 1" 8.0
    (Network.link_delay_factor net 0 1);
  Alcotest.(check bool) "but never faulty" false
    (Network.is_link_faulty net 0 1);
  Sim.run sim;
  Alcotest.(check (float 0.0)) "restored at 2" 1.0
    (Network.link_delay_factor net 0 1)

let () =
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "crash_set_at" `Quick test_crash_set_at;
          Alcotest.test_case "link_set_at" `Quick test_link_set_at;
          Alcotest.test_case "random distinct" `Quick test_random_crashes_distinct;
          Alcotest.test_case "bounds" `Quick test_random_crashes_bounds;
          Alcotest.test_case "churn pairs crash/recover" `Quick test_churn_pairs;
          Alcotest.test_case "churn recovery past window end" `Quick
            test_churn_recovery_past_window_end;
          Alcotest.test_case "churn applies and heals" `Quick
            test_churn_applies_and_heals;
          Alcotest.test_case "random link flaps" `Quick test_random_link_flaps;
          Alcotest.test_case "mixed node/link schedule" `Quick test_mixed_churn_schedule;
          Alcotest.test_case "witness waves" `Quick test_witness_waves;
          Alcotest.test_case "link waves" `Quick test_link_waves;
          Alcotest.test_case "schedule applies" `Quick test_schedule_applies;
          Alcotest.test_case "gray flaps" `Quick test_gray_flaps;
          Alcotest.test_case "region + region links" `Quick test_region;
          Alcotest.test_case "regional waves" `Quick test_regional_waves;
          Alcotest.test_case "gray schedule applies" `Quick
            test_gray_schedule_applies;
        ] );
    ]
