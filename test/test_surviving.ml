open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let simple_routing () =
  (* cycle of 6 with only edge routes *)
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  (g, r)

let test_no_faults () =
  let g, r = simple_routing () in
  let faults = Bitset.create (Graph.n g) in
  let dg = Surviving.graph r ~faults in
  Alcotest.(check int) "all arcs survive" 12 (Digraph.arc_count dg);
  Alcotest.(check bool) "symmetric" true (Digraph.is_symmetric dg);
  Alcotest.(check distance) "diameter = cycle diameter" (Metrics.Finite 3)
    (Surviving.diameter r ~faults)

let test_faulty_interior_kills_route () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  let faults = Bitset.of_list (Graph.n g) [ 1 ] in
  let dg = Surviving.graph r ~faults in
  Alcotest.(check int) "route dead" 0 (Digraph.arc_count dg)

let test_faulty_endpoint_kills_route () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  let faults = Bitset.of_list (Graph.n g) [ 2 ] in
  Alcotest.(check int) "arcs" 0 (Digraph.arc_count (Surviving.graph r ~faults))

let test_diameter_with_fault () =
  let g, r = simple_routing () in
  (* killing 1 forces 0 <-> 2 the long way: distance 4 *)
  let faults = Bitset.of_list (Graph.n g) [ 1 ] in
  Alcotest.(check distance) "diameter 4" (Metrics.Finite 4) (Surviving.diameter r ~faults);
  Alcotest.(check distance) "0->2 distance" (Metrics.Finite 4)
    (Surviving.distance r ~faults 0 2)

let test_infinite_when_disconnected () =
  let g, r = simple_routing () in
  let faults = Bitset.of_list (Graph.n g) [ 1; 4 ] in
  Alcotest.(check distance) "disconnected" Metrics.Infinite (Surviving.diameter r ~faults)

let test_faulty_endpoint_rejected () =
  let g, r = simple_routing () in
  let faults = Bitset.of_list (Graph.n g) [ 1 ] in
  Alcotest.check_raises "faulty endpoint"
    (Invalid_argument "Surviving.distance: faulty endpoint") (fun () ->
      ignore (Surviving.distance r ~faults 1 2))

let test_unidirectional_asymmetry () =
  let g = Families.cycle 4 in
  let r = Routing.create g Routing.Unidirectional in
  Routing.add r (Path.of_list [ 0; 1 ]);
  let faults = Bitset.create 4 in
  let dg = Surviving.graph r ~faults in
  Alcotest.(check bool) "0->1" true (Digraph.mem_arc dg 0 1);
  Alcotest.(check bool) "1->0 absent" false (Digraph.mem_arc dg 1 0);
  Alcotest.(check distance) "asymmetric => infinite diameter" Metrics.Infinite
    (Surviving.diameter r ~faults)

let test_component_diameters_connected () =
  let g, r = simple_routing () in
  let comps = Surviving.component_diameters r ~faults:(Bitset.create (Graph.n g)) in
  Alcotest.(check int) "one component" 1 (List.length comps);
  let members, d = List.hd comps in
  Alcotest.(check int) "everyone" 6 (List.length members);
  Alcotest.(check distance) "diameter" (Metrics.Finite 3) d

let test_component_diameters_split () =
  let g, r = simple_routing () in
  (* killing 1 and 4 splits the 6-cycle into {2,3} and {5,0} *)
  let comps = Surviving.component_diameters r ~faults:(Bitset.of_list (Graph.n g) [ 1; 4 ]) in
  Alcotest.(check int) "two components" 2 (List.length comps);
  List.iter
    (fun (members, d) ->
      Alcotest.(check int) "pair" 2 (List.length members);
      Alcotest.(check distance) "internal diameter 1" (Metrics.Finite 1) d)
    comps

let test_component_diameters_isolated () =
  let g, r = simple_routing () in
  (* kill 1 and 3: node 2 is isolated; the rest form a path *)
  let comps = Surviving.component_diameters r ~faults:(Bitset.of_list (Graph.n g) [ 1; 3 ]) in
  Alcotest.(check int) "two components" 2 (List.length comps);
  let isolated = List.filter (fun (m, _) -> List.length m = 1) comps in
  Alcotest.(check int) "singleton {2}" 1 (List.length isolated)

let test_small_survivor_sets () =
  let g, r = simple_routing () in
  (* all but one vertex faulty: diameter 0 by convention *)
  let faults = Bitset.of_list (Graph.n g) [ 0; 1; 2; 3; 4 ] in
  Alcotest.(check distance) "single survivor" (Metrics.Finite 0)
    (Surviving.diameter r ~faults)

let () =
  Alcotest.run "surviving"
    [
      ( "surviving",
        [
          Alcotest.test_case "no faults" `Quick test_no_faults;
          Alcotest.test_case "faulty interior" `Quick test_faulty_interior_kills_route;
          Alcotest.test_case "faulty endpoint" `Quick test_faulty_endpoint_kills_route;
          Alcotest.test_case "diameter with fault" `Quick test_diameter_with_fault;
          Alcotest.test_case "infinite diameter" `Quick test_infinite_when_disconnected;
          Alcotest.test_case "faulty endpoint rejected" `Quick test_faulty_endpoint_rejected;
          Alcotest.test_case "unidirectional asymmetry" `Quick test_unidirectional_asymmetry;
          Alcotest.test_case "components: connected" `Quick test_component_diameters_connected;
          Alcotest.test_case "components: split" `Quick test_component_diameters_split;
          Alcotest.test_case "components: isolated" `Quick test_component_diameters_isolated;
          Alcotest.test_case "single survivor" `Quick test_small_survivor_sets;
        ] );
    ]
