(* The worker pool: task-order delivery, per-worker state isolation,
   exception propagation and re-entrancy (nested calls fall back to
   the sequential path instead of deadlocking the pool). *)

open Ftr_core

let test_map_matches_sequential () =
  let items = Array.init 100 (fun i -> i) in
  let f i = (i * i) + 3 in
  let expect = Array.map f items in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "map jobs=%d" jobs)
        expect
        (Par.map ~jobs f items))
    [ 1; 2; 4; 8 ]

let test_run_task_order () =
  let r = Par.run ~jobs:4 ~ntasks:33 ~init:(fun () -> ()) ~task:(fun () i -> 2 * i) in
  Alcotest.(check (array int)) "indexed by task" (Array.init 33 (fun i -> 2 * i)) r

let test_empty_and_single () =
  Alcotest.(check (array int)) "ntasks=0" [||]
    (Par.run ~jobs:4 ~ntasks:0 ~init:(fun () -> ()) ~task:(fun () i -> i));
  Alcotest.(check (array int)) "ntasks=1" [| 7 |]
    (Par.run ~jobs:4 ~ntasks:1 ~init:(fun () -> ()) ~task:(fun () _ -> 7))

let test_init_isolation () =
  (* Each participating domain owns one scratch ref; tasks bump it and
     report the value seen. Per-domain counts must partition the tasks:
     within one domain the values 1..k are each seen exactly once, so
     summing over tasks grouped by state id reconstructs the total. *)
  let ids = Atomic.make 0 in
  let r =
    Par.run ~jobs:4 ~ntasks:64
      ~init:(fun () -> (Atomic.fetch_and_add ids 1, ref 0))
      ~task:(fun (id, count) _ ->
        incr count;
        (id, !count))
  in
  Alcotest.(check int) "every task ran" 64 (Array.length r);
  let per_id = Hashtbl.create 8 in
  Array.iter
    (fun (id, seen) ->
      let prev = Option.value (Hashtbl.find_opt per_id id) ~default:0 in
      Alcotest.(check int)
        (Printf.sprintf "state %d counts monotonically" id)
        (prev + 1) seen;
      Hashtbl.replace per_id id seen)
    (let copy = Array.copy r in
     Array.stable_sort compare copy;
     copy);
  let total = Hashtbl.fold (fun _ c acc -> c + acc) per_id 0 in
  Alcotest.(check int) "per-domain counts partition the tasks" 64 total

exception Boom of int

let test_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Par.run ~jobs ~ntasks:50
          ~init:(fun () -> ())
          ~task:(fun () i -> if i = 17 then raise (Boom i) else i)
      with
      | _ -> Alcotest.failf "jobs=%d: expected Boom" jobs
      | exception Boom 17 -> ())
    [ 1; 4 ]

let test_reentrant_falls_back () =
  (* A task that itself calls Par.run must not deadlock: the inner call
     detects it is already inside a parallel section and runs
     sequentially. *)
  let r =
    Par.run ~jobs:4 ~ntasks:6
      ~init:(fun () -> ())
      ~task:(fun () i ->
        let inner =
          Par.run ~jobs:4 ~ntasks:4 ~init:(fun () -> ()) ~task:(fun () j -> i + j)
        in
        Array.fold_left ( + ) 0 inner)
  in
  Alcotest.(check (array int))
    "nested results correct"
    (Array.init 6 (fun i -> (4 * i) + 6))
    r

let test_recommended_jobs_positive () =
  Alcotest.(check bool) "at least one" true (Par.recommended_jobs () >= 1)

(* Par.chunk: the blocks tile [0, count) exactly, results come back in
   range order, and the block count is a function of [count] alone —
   never of [jobs] — so the par.tasks counter stays jobs-independent. *)
let test_chunk_covers_range () =
  List.iter
    (fun count ->
      List.iter
        (fun jobs ->
          let blocks =
            Par.chunk ~jobs ~count ~init:(fun () -> ()) ~task:(fun () ~lo ~hi -> (lo, hi))
          in
          let flat =
            Array.to_list blocks
            |> List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i))
          in
          Alcotest.(check (list int))
            (Printf.sprintf "count=%d jobs=%d tiles the range in order" count jobs)
            (List.init count Fun.id) flat)
        [ 1; 4 ])
    [ 1; 2; 31; 32; 33; 100 ]

let test_chunk_empty_and_negative () =
  Alcotest.(check (array (pair int int))) "count=0" [||]
    (Par.chunk ~jobs:4 ~count:0 ~init:(fun () -> ()) ~task:(fun () ~lo ~hi -> (lo, hi)));
  Alcotest.check_raises "negative count" (Invalid_argument "Par.chunk: negative count")
    (fun () ->
      ignore
        (Par.chunk ~jobs:4 ~count:(-1)
           ~init:(fun () -> ())
           ~task:(fun () ~lo:_ ~hi:_ -> ())))

let test_chunk_block_count_jobs_independent () =
  List.iter
    (fun count ->
      let nblocks jobs =
        Array.length
          (Par.chunk ~jobs ~count ~init:(fun () -> ()) ~task:(fun () ~lo:_ ~hi:_ -> ()))
      in
      let base = nblocks 1 in
      List.iter
        (fun jobs ->
          Alcotest.(check int)
            (Printf.sprintf "count=%d jobs=%d same block count" count jobs)
            base (nblocks jobs))
        [ 2; 4; 8; 16 ])
    [ 1; 5; 32; 33; 1000 ]

let () =
  Alcotest.run "par"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "run delivers in task order" `Quick test_run_task_order;
          Alcotest.test_case "empty and single jobs" `Quick test_empty_and_single;
          Alcotest.test_case "per-worker init isolation" `Quick test_init_isolation;
          Alcotest.test_case "exceptions propagate" `Quick test_exception_propagates;
          Alcotest.test_case "re-entrant calls fall back" `Quick
            test_reentrant_falls_back;
          Alcotest.test_case "recommended_jobs positive" `Quick
            test_recommended_jobs_positive;
        ] );
      ( "chunk",
        [
          Alcotest.test_case "blocks tile the range" `Quick test_chunk_covers_range;
          Alcotest.test_case "empty and negative counts" `Quick
            test_chunk_empty_and_negative;
          Alcotest.test_case "block count is jobs-independent" `Quick
            test_chunk_block_count_jobs_independent;
        ] );
    ]
