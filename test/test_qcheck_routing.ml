(* Property-based tests of the central claims: on randomly generated
   2-connected graphs, the constructions stay within their claimed
   surviving-diameter bounds under random fault sets. *)

open Ftr_graph
open Ftr_core

let graph_print g =
  Format.asprintf "n=%d edges=%a" (Graph.n g)
    Fmt.(list ~sep:sp (pair ~sep:(any "-") int int))
    (Graph.edges g)

(* Random cycle + chords: 2-connected, i.e. t >= 1. *)
let chorded_cycle_gen ~nmin ~nmax =
  QCheck.Gen.(
    let* n = int_range nmin nmax in
    let* extra = int_range 0 n in
    let* seed = int_range 0 1_000_000 in
    let rng = Random.State.make [| seed |] in
    let chords =
      List.init extra (fun _ -> (Random.State.int rng n, Random.State.int rng n))
    in
    let cycle = List.init n (fun i -> (i, (i + 1) mod n)) in
    return (Graph.of_edges ~n (cycle @ chords)))

(* A graph plus a random fault set of size at most [t(g)]. *)
let with_faults_gen ~nmin ~nmax =
  QCheck.Gen.(
    let* g = chorded_cycle_gen ~nmin ~nmax in
    let t = Connectivity.vertex_connectivity g - 1 in
    let* fault_seed = int_range 0 1_000_000 in
    let rng = Random.State.make [| fault_seed |] in
    let f = if t = 0 then 0 else Random.State.int rng (t + 1) in
    let faults =
      List.sort_uniq compare
        (List.init f (fun _ -> Random.State.int rng (Graph.n g)))
    in
    return (g, t, faults))

let arb_with_faults ~nmin ~nmax =
  QCheck.make
    ~print:(fun (g, t, faults) ->
      Printf.sprintf "%s t=%d F={%s}" (graph_print g) t
        (String.concat "," (List.map string_of_int faults)))
    (with_faults_gen ~nmin ~nmax)

let surviving_within routing faults ~bound =
  let n = Graph.n (Routing.graph routing) in
  let faults = Bitset.of_list n faults in
  Metrics.distance_le (Surviving.diameter routing ~faults) (Metrics.Finite bound)

let prop_kernel_theorem3 =
  QCheck.Test.make ~name:"Theorem 3: kernel within max(2t,4) under <=t faults"
    ~count:40 (arb_with_faults ~nmin:6 ~nmax:14)
    (fun (g, t, faults) ->
      let c = Kernel.make g ~t in
      surviving_within c.Construction.routing faults ~bound:(max (2 * t) 4))

let prop_kernel_theorem4 =
  QCheck.Test.make ~name:"Theorem 4: kernel within 4 under <=t/2 faults" ~count:40
    (arb_with_faults ~nmin:6 ~nmax:14)
    (fun (g, t, faults) ->
      let faults = List.filteri (fun i _ -> i < t / 2) faults in
      let c = Kernel.make g ~t in
      surviving_within c.Construction.routing faults ~bound:4)

let prop_kernel_routing_valid =
  QCheck.Test.make ~name:"kernel routing table is always valid" ~count:40
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:6 ~nmax:14))
    (fun g ->
      let t = Connectivity.vertex_connectivity g - 1 in
      let c = Kernel.make g ~t in
      Routing.validate c.Construction.routing = Ok ())

let prop_circular_theorem10 =
  QCheck.Test.make ~name:"Theorem 10: circular within 6 when a set exists" ~count:40
    (arb_with_faults ~nmin:12 ~nmax:24)
    (fun (g, t, faults) ->
      let m = Independent.greedy g in
      QCheck.assume (List.length m >= Circular.required_k ~t);
      let c = Circular.make ~m g ~t in
      surviving_within c.Construction.routing faults ~bound:6)

let prop_bipolar_theorems =
  QCheck.Test.make ~name:"Theorems 20/23: bipolar bounds when roots exist" ~count:40
    (arb_with_faults ~nmin:12 ~nmax:24)
    (fun (g, t, faults) ->
      match Two_trees.find g with
      | None -> QCheck.assume_fail ()
      | Some roots ->
          let uni = Bipolar.make_unidirectional ~roots g ~t in
          let bi = Bipolar.make_bidirectional ~roots g ~t in
          surviving_within uni.Construction.routing faults ~bound:4
          && surviving_within bi.Construction.routing faults ~bound:5)

let prop_auto_respects_strongest_claim =
  QCheck.Test.make ~name:"auto-built construction honors its strongest claim"
    ~count:25 (arb_with_faults ~nmin:8 ~nmax:16)
    (fun (g, _, faults) ->
      let choice = Builder.auto g in
      let c = choice.Builder.construction in
      let claim = Construction.strongest_claim c in
      let faults =
        List.filteri (fun i _ -> i < claim.Construction.max_faults) faults
      in
      surviving_within c.Construction.routing faults
        ~bound:claim.Construction.diameter_bound)

let prop_surviving_antitone =
  QCheck.Test.make ~name:"more faults never add surviving arcs" ~count:40
    (arb_with_faults ~nmin:6 ~nmax:14)
    (fun (g, t, faults) ->
      let c = Kernel.make g ~t in
      let n = Graph.n g in
      let sub = match faults with [] -> [] | _ :: rest -> rest in
      let dg_all = Surviving.graph c.Construction.routing ~faults:(Bitset.of_list n faults) in
      let dg_sub = Surviving.graph c.Construction.routing ~faults:(Bitset.of_list n sub) in
      let ok = ref true in
      for u = 0 to n - 1 do
        Array.iter
          (fun v -> if not (Digraph.mem_arc dg_sub u v) then ok := false)
          (Digraph.succ dg_all u)
      done;
      !ok)

let prop_tree_routing_verifies =
  QCheck.Test.make ~name:"tree routings satisfy their defining properties" ~count:60
    (QCheck.make
       ~print:(fun (g, src, center) ->
         Printf.sprintf "%s src=%d center=%d" (graph_print g) src center)
       QCheck.Gen.(
         let* g = chorded_cycle_gen ~nmin:6 ~nmax:16 in
         let n = Graph.n g in
         let* src = int_range 0 (n - 1) in
         let* center = int_range 0 (n - 1) in
         return (g, src, center)))
    (fun (g, src, center) ->
      QCheck.assume (src <> center);
      QCheck.assume (not (Graph.mem_edge g src center));
      let targets = Array.to_list (Graph.neighbors g center) in
      QCheck.assume (not (List.mem src targets));
      let t = Connectivity.vertex_connectivity g - 1 in
      let k = min (t + 1) (List.length targets) in
      let paths = Tree_routing.make g ~src ~targets ~k in
      Tree_routing.verify g ~src ~targets ~k paths = Ok ())

let prop_kernel_lemma_properties =
  QCheck.Test.make ~name:"kernel lemma properties hold under <=t faults" ~count:30
    (arb_with_faults ~nmin:6 ~nmax:14)
    (fun (g, t, faults) ->
      let c = Kernel.make g ~t in
      let n = Graph.n g in
      Properties.all_hold (Properties.check c ~faults:(Bitset.of_list n faults)))

let prop_bipolar_lemma_properties =
  QCheck.Test.make ~name:"bipolar lemma properties hold under <=t faults" ~count:30
    (arb_with_faults ~nmin:12 ~nmax:24)
    (fun (g, t, faults) ->
      match Two_trees.find g with
      | None -> QCheck.assume_fail ()
      | Some roots ->
          let n = Graph.n g in
          let fs = Bitset.of_list n faults in
          Properties.all_hold
            (Properties.check (Bipolar.make_unidirectional ~roots g ~t) ~faults:fs)
          && Properties.all_hold
               (Properties.check (Bipolar.make_bidirectional ~roots g ~t) ~faults:fs))

let prop_minimal_routing_stretch_one =
  QCheck.Test.make ~name:"minimal routing always has stretch 1" ~count:30
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:5 ~nmax:15))
    (fun g ->
      let c = Minimal_routing.make g in
      Routing.stretch c.Construction.routing = 1.0)

let prop_routing_io_roundtrip =
  QCheck.Test.make ~name:"routing tables survive save/load" ~count:30
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:5 ~nmax:12))
    (fun g ->
      let t = Connectivity.vertex_connectivity g - 1 in
      let c = Kernel.make g ~t in
      match Routing_io.load g (Routing_io.to_string c.Construction.routing) with
      | Error _ -> false
      | Ok loaded ->
          Routing.route_count loaded = Routing.route_count c.Construction.routing
          && Routing.validate loaded = Ok ())

let prop_attack_cross_validates =
  QCheck.Test.make
    ~name:"attack never exceeds exhaustive worst; shrunk witness reproduces it"
    ~count:15
    (QCheck.make ~print:graph_print (chorded_cycle_gen ~nmin:6 ~nmax:10))
    (fun g ->
      let t = Connectivity.vertex_connectivity g - 1 in
      let c = Kernel.make g ~t in
      let routing = c.Construction.routing in
      let f = max 1 t in
      let n = Graph.n g in
      let truth = Tolerance.exhaustive routing ~f in
      let rng = Random.State.make [| 11; n |] in
      let o =
        Attack.search
          ~config:{ Attack.default_config with Attack.budget = 400 }
          ~rng ~pools:c.Construction.pools routing ~f
      in
      let compiled = Surviving.compile routing in
      let reproduced =
        Surviving.diameter_compiled compiled
          ~faults:(Bitset.of_list n o.Attack.witness)
      in
      Attack.score ~n o.Attack.worst <= Attack.score ~n truth.Tolerance.worst
      && reproduced = o.Attack.worst)

let prop_full_multirouting_diameter_one =
  QCheck.Test.make ~name:"Section 6 (1): full multirouting diameter 1" ~count:15
    (arb_with_faults ~nmin:5 ~nmax:9)
    (fun (g, t, faults) ->
      QCheck.assume (List.length faults <= t);
      let mt = Multirouting.full g ~t in
      let n = Graph.n g in
      let d = Multirouting.diameter mt ~faults:(Bitset.of_list n faults) in
      let survivors = n - List.length faults in
      Metrics.distance_le d (Metrics.Finite (if survivors <= 1 then 0 else 1)))

let () =
  let suite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_kernel_theorem3;
        prop_kernel_theorem4;
        prop_kernel_routing_valid;
        prop_circular_theorem10;
        prop_bipolar_theorems;
        prop_auto_respects_strongest_claim;
        prop_surviving_antitone;
        prop_tree_routing_verifies;
        prop_kernel_lemma_properties;
        prop_bipolar_lemma_properties;
        prop_minimal_routing_stretch_one;
        prop_routing_io_roundtrip;
        prop_attack_cross_validates;
        prop_full_multirouting_diameter_one;
      ]
  in
  Alcotest.run "qcheck_routing" [ ("properties", suite) ]
