(* The static artifact certifier (DESIGN.md section 10): clean
   constructions, corpora and routing files certify; corrupted ones
   are rejected with a located diagnostic. *)

open Ftr_graph
open Ftr_core
module Certify = Ftr_analysis.Certify
module Graph_spec = Ftr_analysis.Graph_spec

let graph spec =
  match Graph_spec.parse spec with
  | Ok g -> g
  | Error e -> Alcotest.failf "bad spec %s: %s" spec e

(* A miniature of the CLI's strategy table, enough for the corpora the
   tests write. *)
let build ~graph ~strategy ~seed:_ =
  let t = Connectivity.vertex_connectivity graph - 1 in
  match strategy with
  | "kernel" -> (
      match Kernel.make graph ~t with
      | c -> Ok c
      | exception Invalid_argument m -> Error m)
  | "bipolar-uni" -> (
      match Bipolar.make_unidirectional graph ~t with
      | c -> Ok c
      | exception Invalid_argument m -> Error m)
  | s -> Error ("unknown strategy " ^ s)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let entry ?(f = 1) ?(faults = [ 11 ]) ?(edges = []) () =
  {
    Attack.Corpus.graph = "cycle:12";
    strategy = "bipolar-uni";
    seed = 1;
    n = 12;
    f;
    faults;
    edges;
    diameter = Metrics.Finite 3;
    bound = Some 4;
    found_by = "test";
  }

let with_corpus_file entries k =
  let path = Filename.temp_file "certify" ".json" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Attack.Corpus.save_file path entries;
      k path)

let test_construction_certifies () =
  let c = Kernel.make (graph "torus:5x5") ~t:3 in
  Alcotest.(check int)
    "kernel on torus:5x5 is clean" 0
    (List.length (Certify.certify_construction ~artifact:"kernel" c))

let test_broken_separator_flagged () =
  (* Edge routes alone cannot give every outside node t+1 disjoint
     routes into the separator; the certifier must say which node. *)
  let g = graph "cycle:12" in
  let routing = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes routing;
  let c =
    {
      Construction.name = "broken";
      routing;
      concentrator = [ 0; 6 ];
      structure = Construction.Separator [ 0; 6 ];
      pools = [];
      claims = [ Construction.claim ~bound:6 ~faults:1 "test fixture" ];
    }
  in
  let problems = Certify.certify_construction ~artifact:"broken" c in
  Alcotest.(check bool) "problems found" true (problems <> []);
  Alcotest.(check bool)
    "a node misses its separator quota" true
    (List.exists
       (fun (p : Certify.problem) ->
         contains_substring p.Certify.message "separator members")
       problems)

let test_corpus_certifies () =
  with_corpus_file [ entry () ] @@ fun path ->
  let o = Certify.certify_corpus_paths ~build [ path ] in
  Alcotest.(check int) "files" 1 o.Certify.files;
  Alcotest.(check int) "entries" 1 o.Certify.entries;
  Alcotest.(check int) "constructions" 1 o.Certify.constructions;
  Alcotest.(check int) "no problems" 0 (List.length o.Certify.problems)

let test_corrupted_entry_rejected () =
  (* (0,5) is not an edge of cycle:12; the diagnostic must carry the
     file and the entry index. *)
  with_corpus_file [ entry ~f:2 ~edges:[ (0, 5) ] () ] @@ fun path ->
  let o = Certify.certify_corpus_paths ~build [ path ] in
  match o.Certify.problems with
  | [ p ] ->
      Alcotest.(check string) "artifact is the file" path p.Certify.artifact;
      Alcotest.(check (option string)) "entry located" (Some "entry 1")
        p.Certify.where;
      Alcotest.(check bool)
        "message names the non-edge" true
        (contains_substring p.Certify.message "not an edge")
  | ps -> Alcotest.failf "expected 1 problem, got %d" (List.length ps)

let test_entry_shape_checks () =
  with_corpus_file
    [ entry ~f:1 ~faults:[ 3; 3 ] (); entry ~faults:[ 12 ] () ]
  @@ fun path ->
  let o = Certify.certify_corpus_paths ~build [ path ] in
  let messages =
    List.map (fun (p : Certify.problem) -> p.Certify.message) o.Certify.problems
  in
  Alcotest.(check bool)
    "duplicate faults flagged" true
    (List.exists (fun m -> contains_substring m "sorted and distinct") messages);
  Alcotest.(check bool)
    "out-of-range fault flagged" true
    (List.exists (fun m -> contains_substring m "out of range") messages)

let test_unknown_strategy_rejected () =
  with_corpus_file [ { (entry ()) with Attack.Corpus.strategy = "warp" } ]
  @@ fun path ->
  let o = Certify.certify_corpus_paths ~build [ path ] in
  Alcotest.(check bool)
    "unknown strategy reported" true
    (List.exists
       (fun (p : Certify.problem) ->
         contains_substring p.Certify.message "unknown strategy")
       o.Certify.problems)

let with_routing_file text k =
  let path = Filename.temp_file "certify" ".routing" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc text);
      k path)

let test_routing_file_certifies () =
  with_routing_file "ftr-routing 1 4 uni\n0 1 0,1\n0 2 0,1,2\n" @@ fun path ->
  let routes, problems = Certify.certify_routing_file ~graph:(graph "cycle:4") path in
  Alcotest.(check int) "routes" 2 routes;
  Alcotest.(check int) "no problems" 0 (List.length problems)

let test_routing_file_non_edge_rejected () =
  (* 0-2 is not an edge of cycle:4: rejected with its line number. *)
  with_routing_file "ftr-routing 1 4 uni\n0 1 0,1\n0 2 0,2\n" @@ fun path ->
  let _, problems = Certify.certify_routing_file ~graph:(graph "cycle:4") path in
  match problems with
  | [ p ] ->
      Alcotest.(check bool)
        "line number reported" true
        (contains_substring p.Certify.message "line 3")
  | ps -> Alcotest.failf "expected 1 problem, got %d" (List.length ps)

(* ---- header-only certification (no graph) ---- *)

let header_problems text =
  with_routing_file text @@ fun path ->
  match Certify.certify_routing_header path with
  | Ok _ -> []
  | Error ps -> ps

let test_header_v2_certifies () =
  with_routing_file "ftr-routing 2 8 uni compact hypercube:3\n" @@ fun path ->
  match Certify.certify_routing_header path with
  | Ok desc ->
      Alcotest.(check bool)
        "description mentions v2" true
        (contains_substring desc "v2 compact")
  | Error ps -> Alcotest.failf "expected ok, got %d problem(s)" (List.length ps)

let test_header_v1_certifies () =
  with_routing_file "ftr-routing 1 4 bi\n0 1 0,1\n" @@ fun path ->
  match Certify.certify_routing_header path with
  | Ok desc ->
      Alcotest.(check bool) "description mentions v1" true
        (contains_substring desc "v1 rows")
  | Error ps -> Alcotest.failf "expected ok, got %d problem(s)" (List.length ps)

let check_single_line1_problem name text fragment =
  match header_problems text with
  | [ p ] ->
      Alcotest.(check (option string)) (name ^ " carries line 1") (Some "line 1")
        p.Certify.where;
      Alcotest.(check bool)
        (name ^ " message") true
        (contains_substring p.Certify.message fragment)
  | ps -> Alcotest.failf "%s: expected 1 problem, got %d" name (List.length ps)

let test_header_unknown_kind () =
  check_single_line1_problem "unknown kind"
    "ftr-routing 2 8 tri compact hypercube:3\n" "unknown kind"

let test_header_bad_spec () =
  check_single_line1_problem "bad spec" "ftr-routing 2 8 uni compact warp:3\n"
    "bad compact spec"

let test_header_n_mismatch () =
  (* hypercube:3 embeds n=8; the header claims 16. *)
  check_single_line1_problem "n mismatch"
    "ftr-routing 2 16 uni compact hypercube:3\n" "n=8"

let test_header_trailing_rows () =
  check_single_line1_problem "trailing rows"
    "ftr-routing 2 8 uni compact hypercube:3\n0 1 0,1\n" "single header line"

let test_header_unknown_version () =
  check_single_line1_problem "unknown version" "ftr-routing 3 8 uni\n"
    "unknown ftr-routing version"

let () =
  Alcotest.run "certify"
    [
      ( "constructions",
        [
          Alcotest.test_case "kernel certifies" `Quick test_construction_certifies;
          Alcotest.test_case "broken separator flagged" `Quick
            test_broken_separator_flagged;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "clean corpus certifies" `Quick test_corpus_certifies;
          Alcotest.test_case "non-edge link fault rejected" `Quick
            test_corrupted_entry_rejected;
          Alcotest.test_case "fault shape checks" `Quick test_entry_shape_checks;
          Alcotest.test_case "unknown strategy rejected" `Quick
            test_unknown_strategy_rejected;
        ] );
      ( "routing files",
        [
          Alcotest.test_case "valid table certifies" `Quick test_routing_file_certifies;
          Alcotest.test_case "non-edge step rejected" `Quick
            test_routing_file_non_edge_rejected;
        ] );
      ( "headers",
        [
          Alcotest.test_case "v2 compact header certifies" `Quick
            test_header_v2_certifies;
          Alcotest.test_case "v1 header certifies" `Quick test_header_v1_certifies;
          Alcotest.test_case "unknown kind rejected at line 1" `Quick
            test_header_unknown_kind;
          Alcotest.test_case "bad spec rejected" `Quick test_header_bad_spec;
          Alcotest.test_case "spec/header n mismatch rejected" `Quick
            test_header_n_mismatch;
          Alcotest.test_case "trailing rows rejected" `Quick
            test_header_trailing_rows;
          Alcotest.test_case "unknown version rejected" `Quick
            test_header_unknown_version;
        ] );
    ]
