open Ftr_graph
open Ftr_core
open Ftr_sim

let edge_net () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  Network.create r

let config = Protocol.default_config

let test_direct_delivery () =
  let net = edge_net () in
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:1 () in
  Sim.run sim;
  Alcotest.(check bool) "delivered" true (msg.Message.status = Message.Delivered);
  Alcotest.(check int) "one route" 1 msg.Message.routes_traversed;
  Alcotest.(check int) "one hop" 1 msg.Message.hops;
  Alcotest.(check int) "no retries" 0 msg.Message.retries;
  (match Message.latency msg with
  | Some l -> Alcotest.(check (float 1e-9)) "endpoint + hop" 11.0 l
  | None -> Alcotest.fail "no latency")

let test_multihop_delivery () =
  let net = edge_net () in
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:3 () in
  Sim.run sim;
  Alcotest.(check bool) "delivered" true (msg.Message.status = Message.Delivered);
  Alcotest.(check int) "three routes (edge routing)" 3 msg.Message.routes_traversed;
  Alcotest.(check int) "three hops" 3 msg.Message.hops

let test_self_delivery () =
  let net = edge_net () in
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:2 ~dst:2 () in
  Alcotest.(check bool) "instant" true (msg.Message.status = Message.Delivered);
  Alcotest.(check int) "no routes" 0 msg.Message.routes_traversed

let test_faulty_source_undeliverable () =
  let net = edge_net () in
  Network.crash net 0;
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:3 () in
  Sim.run sim;
  Alcotest.(check bool) "undeliverable" true (msg.Message.status = Message.Undeliverable)

let test_faulty_destination_undeliverable () =
  let net = edge_net () in
  Network.crash net 3;
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:3 () in
  Sim.run sim;
  Alcotest.(check bool) "undeliverable" true (msg.Message.status = Message.Undeliverable)

let test_reroute_around_fault () =
  (* Routing with a long fixed route 0->2 via 1; kill 1: the sender
     pays a retry, then re-plans via surviving edge routes. *)
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Routing.add_edge_routes r;
  let net = Network.create r in
  Network.crash net 1;
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:2 () in
  Sim.run sim;
  Alcotest.(check bool) "delivered" true (msg.Message.status = Message.Delivered);
  Alcotest.(check int) "one retry" 1 msg.Message.retries;
  Alcotest.(check int) "long way: 4 routes" 4 msg.Message.routes_traversed

let test_mid_flight_crash () =
  (* Crash a node while the message is in transit: the next boundary
     check catches it. *)
  let net = edge_net () in
  let sim = Sim.create () in
  (* message 0 -> 3 via 1, 2; crash 2 just after the first hop *)
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:3 () in
  Sim.schedule sim ~delay:12.0 (fun () -> Network.crash net 2);
  Sim.run sim;
  Alcotest.(check bool) "delivered anyway" true (msg.Message.status = Message.Delivered);
  Alcotest.(check bool) "made a detour" true (msg.Message.retries >= 1)

(* ---------------- churn hardening ---------------- *)

(* Fixed route 0->2 via a crashed node 1: the sender pays one nack and
   re-plans. With a zero re-plan budget that nack is a dead letter. *)
let stale_route_net () =
  let g = Families.cycle 6 in
  let r = Routing.create g Routing.Bidirectional in
  Routing.add r (Path.of_list [ 0; 1; 2 ]);
  Routing.add_edge_routes r;
  let net = Network.create r in
  Network.crash net 1;
  net

let test_replan_budget_dead_letter () =
  let net = stale_route_net () in
  let sim = Sim.create () in
  let msg =
    Protocol.send sim net { config with Protocol.max_replans = 0 } ~id:0 ~src:0
      ~dst:2 ()
  in
  Sim.run sim;
  Alcotest.(check bool) "dead letter" true
    (msg.Message.status = Message.DeadLetter);
  Alcotest.(check int) "no re-plan was granted" 0 msg.Message.retries;
  (* one more re-plan in the budget is enough to deliver *)
  let sim = Sim.create () in
  let msg =
    Protocol.send sim net { config with Protocol.max_replans = 1 } ~id:1 ~src:0
      ~dst:2 ()
  in
  Sim.run sim;
  Alcotest.(check bool) "budget of one delivers" true
    (msg.Message.status = Message.Delivered)

let test_deadline_dead_letter () =
  let net = stale_route_net () in
  let sim = Sim.create () in
  let msg =
    Protocol.send sim net { config with Protocol.deadline = Some 0.0 } ~id:0
      ~src:0 ~dst:2 ()
  in
  Sim.run sim;
  Alcotest.(check bool) "expired at the first nack" true
    (msg.Message.status = Message.DeadLetter)

(* Two nacks with churn: crash 1 up front (nack at send), then crash 5
   mid-flight while recovering 1 (nack at the boundary), so the second
   re-plan succeeds through 1. The second nack delay is where the
   exponential backoff shows. *)
let double_nack_latency ~backoff ~deadline =
  let net = stale_route_net () in
  let sim = Sim.create () in
  Sim.schedule sim ~delay:10.0 (fun () ->
      Network.crash net 5;
      Network.recover net 1);
  let msg =
    Protocol.send sim net
      { config with Protocol.backoff; deadline }
      ~id:0 ~src:0 ~dst:2 ()
  in
  Sim.run sim;
  msg

let test_exponential_backoff () =
  let legacy = double_nack_latency ~backoff:1.0 ~deadline:None in
  let backed = double_nack_latency ~backoff:2.0 ~deadline:None in
  Alcotest.(check bool) "both delivered" true
    (legacy.Message.status = Message.Delivered
    && backed.Message.status = Message.Delivered);
  Alcotest.(check int) "two re-plans (legacy)" 2 legacy.Message.retries;
  Alcotest.(check int) "two re-plans (backed off)" 2 backed.Message.retries;
  let lat m = Option.get (Message.latency m) in
  (* the only difference is the second nack: nack * (2^1 - 1^1) *)
  Alcotest.(check (float 1e-9))
    "backoff adds exactly one extra nack_latency" 5.0
    (lat backed -. lat legacy)

let test_deadline_cuts_thrashing () =
  (* Same churn, but a deadline between the first and second nack: the
     second nack finds the message expired. *)
  let msg = double_nack_latency ~backoff:1.0 ~deadline:(Some 10.0) in
  Alcotest.(check bool) "dead letter under churn" true
    (msg.Message.status = Message.DeadLetter);
  Alcotest.(check int) "only the first re-plan ran" 1 msg.Message.retries

(* The same double-nack churn, with the full config in the caller's
   hands (the helper above only varies backoff and deadline). *)
let double_nack_msg config =
  let net = stale_route_net () in
  let sim = Sim.create () in
  Sim.schedule sim ~delay:10.0 (fun () ->
      Network.crash net 5;
      Network.recover net 1);
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:2 () in
  Sim.run sim;
  msg

let test_replan_budget_binds_exactly () =
  (* Two nacks are needed. A budget of exactly two delivers, and the
     backoff applied at the last permitted re-plan stays the finite
     nack_latency * backoff^(retries - 1) — with factor 4 the second
     nack waits 20 instead of 5, so exactly +15 latency. *)
  let lat m = Option.get (Message.latency m) in
  let backed =
    double_nack_msg { config with Protocol.max_replans = 2; backoff = 4.0 }
  in
  let flat =
    double_nack_msg { config with Protocol.max_replans = 2; backoff = 1.0 }
  in
  Alcotest.(check bool) "budget of two delivers (both)" true
    (backed.Message.status = Message.Delivered
    && flat.Message.status = Message.Delivered);
  Alcotest.(check int) "the whole budget was spent" 2 backed.Message.retries;
  Alcotest.(check (float 1e-9))
    "backoff at the bound is exactly one quadrupled nack" 15.0
    (lat backed -. lat flat);
  (* One re-plan fewer: the second nack exhausts the budget and the
     message dead-letters instead of backing off forever. *)
  let short =
    double_nack_msg { config with Protocol.max_replans = 1; backoff = 4.0 }
  in
  Alcotest.(check bool) "budget of one dead-letters" true
    (short.Message.status = Message.DeadLetter);
  Alcotest.(check int) "no re-plan beyond the bound" 1 short.Message.retries

let test_deadline_exact_boundaries () =
  (* The deadline is checked at nacks only, never on the delivery
     path: a message arriving exactly at its deadline with no nack is
     Delivered, not a dead letter. *)
  let net = edge_net () in
  let sim = Sim.create () in
  let msg =
    Protocol.send sim net
      { config with Protocol.deadline = Some 11.0 }
      ~id:0 ~src:0 ~dst:1 ()
  in
  Sim.run sim;
  Alcotest.(check bool) "exact-deadline arrival is delivered" true
    (msg.Message.status = Message.Delivered);
  Alcotest.(check (float 1e-9)) "arrived exactly at the deadline" 11.0
    (Option.get (Message.latency msg));
  (* A nack landing exactly on the deadline expires (>= binds): the
     double-nack scenario's second nack fires at t = 16. *)
  let at_nack = double_nack_msg { config with Protocol.deadline = Some 16.0 } in
  Alcotest.(check bool) "nack exactly at the deadline expires" true
    (at_nack.Message.status = Message.DeadLetter);
  Alcotest.(check int) "only the first re-plan ran" 1 at_nack.Message.retries;
  let past_nack =
    double_nack_msg { config with Protocol.deadline = Some 16.5 }
  in
  Alcotest.(check bool) "a hair later and it delivers" true
    (past_nack.Message.status = Message.Delivered)

let test_hardened_matches_legacy_under_static_faults () =
  (* One nack, re-plan, delivered: the hardened limits never bind, so
     timings and counters agree with the legacy config. *)
  let run config =
    let net = stale_route_net () in
    let sim = Sim.create () in
    let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:2 () in
    Sim.run sim;
    msg
  in
  let legacy = run Protocol.default_config in
  let hard = run Protocol.hardened_config in
  Alcotest.(check bool) "both delivered" true
    (legacy.Message.status = Message.Delivered
    && hard.Message.status = Message.Delivered);
  Alcotest.(check int) "same retries" legacy.Message.retries hard.Message.retries;
  Alcotest.(check (float 1e-9))
    "same latency"
    (Option.get (Message.latency legacy))
    (Option.get (Message.latency hard))

let test_deliver_all_order () =
  let net = edge_net () in
  let sim = Sim.create () in
  let msgs =
    Protocol.deliver_all sim net config [ (0.0, 0, 1); (5.0, 1, 2); (10.0, 2, 3) ]
  in
  Alcotest.(check int) "three" 3 (List.length msgs);
  List.iteri (fun i m -> Alcotest.(check int) "ids in order" i m.Message.id) msgs;
  Alcotest.(check bool) "all delivered" true
    (List.for_all (fun m -> m.Message.status = Message.Delivered) msgs)

let test_broadcast_full () =
  let net = edge_net () in
  let r = Protocol.broadcast net ~origin:0 ~counter_bound:10 in
  Alcotest.(check int) "reaches all" 6 r.Protocol.reached;
  Alcotest.(check int) "rounds = eccentricity" 3 r.Protocol.rounds

let test_broadcast_counter_bound () =
  let net = edge_net () in
  let r = Protocol.broadcast net ~origin:0 ~counter_bound:1 in
  Alcotest.(check int) "one round" 3 r.Protocol.reached;
  Alcotest.(check int) "rounds capped" 1 r.Protocol.rounds

let test_broadcast_with_faults_bounded_by_diameter () =
  let net = edge_net () in
  Network.crash net 1;
  let diam =
    match Network.surviving_diameter net with
    | Metrics.Finite d -> d
    | Metrics.Infinite -> Alcotest.fail "should stay connected"
  in
  let r = Protocol.broadcast net ~origin:0 ~counter_bound:diam in
  Alcotest.(check int) "reaches all survivors" 5 r.Protocol.reached;
  Alcotest.(check bool) "rounds <= diameter" true (r.Protocol.rounds <= diam)

let test_broadcast_faulty_origin_rejected () =
  let net = edge_net () in
  Network.crash net 0;
  Alcotest.check_raises "faulty origin" (Invalid_argument "Protocol.broadcast: faulty origin")
    (fun () -> ignore (Protocol.broadcast net ~origin:0 ~counter_bound:3))

let test_broadcast_async_reaches_all () =
  let net = edge_net () in
  let sim = Sim.create () in
  let r = Protocol.broadcast_async sim net config ~origin:0 ~counter_bound:10 in
  Alcotest.(check int) "reached" 6 r.Protocol.a_reached;
  Alcotest.(check bool) "copies sent" true (r.Protocol.a_copies > 0);
  Alcotest.(check bool) "takes time" true (r.Protocol.a_finished_at > 0.0)

let test_broadcast_async_counter_cuts () =
  let net = edge_net () in
  let sim = Sim.create () in
  let r = Protocol.broadcast_async sim net config ~origin:0 ~counter_bound:1 in
  (* one forwarding step from the origin: the origin plus its two
     route successors *)
  Alcotest.(check int) "origin + neighbors" 3 r.Protocol.a_reached

let test_broadcast_async_under_faults () =
  let net = edge_net () in
  Network.crash net 1;
  let sim = Sim.create () in
  let r = Protocol.broadcast_async sim net config ~origin:0 ~counter_bound:10 in
  Alcotest.(check int) "reaches the 5 survivors" 5 r.Protocol.a_reached

let test_broadcast_async_faulty_origin () =
  let net = edge_net () in
  Network.crash net 0;
  let sim = Sim.create () in
  Alcotest.check_raises "faulty origin"
    (Invalid_argument "Protocol.broadcast_async: faulty origin") (fun () ->
      ignore (Protocol.broadcast_async sim net config ~origin:0 ~counter_bound:3))

(* ---------------- gray failures ---------------- *)

let test_degraded_link_slows_delivery () =
  let net = edge_net () in
  Network.degrade_link net 0 1 ~factor:4.0;
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:1 () in
  Sim.run sim;
  Alcotest.(check bool) "still delivered" true
    (msg.Message.status = Message.Delivered);
  Alcotest.(check int) "no retries: slowed, not cut" 0 msg.Message.retries;
  (match Message.latency msg with
  (* endpoint 10 + hop 1 * factor 4 *)
  | Some l -> Alcotest.(check (float 1e-9)) "4x transit" 14.0 l
  | None -> Alcotest.fail "no latency")

let test_degraded_transit_is_per_route_mean () =
  let net = edge_net () in
  Network.degrade_link net 1 2 ~factor:4.0;
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:0 ~src:0 ~dst:3 () in
  Sim.run sim;
  Alcotest.(check bool) "delivered" true (msg.Message.status = Message.Delivered);
  (match Message.latency msg with
  (* three single-hop edge routes: 3 endpoints + transits 1, 4, 1 *)
  | Some l -> Alcotest.(check (float 1e-9)) "one slow hop" 36.0 l
  | None -> Alcotest.fail "no latency");
  Network.restore_link_delay net 1 2;
  let sim = Sim.create () in
  let msg = Protocol.send sim net config ~id:1 ~src:0 ~dst:3 () in
  Sim.run sim;
  match Message.latency msg with
  | Some l -> Alcotest.(check (float 1e-9)) "healthy again" 33.0 l
  | None -> Alcotest.fail "no latency"

let test_degraded_network_reports_no_faults () =
  let net = edge_net () in
  Network.degrade_link net 0 1 ~factor:16.0;
  Network.degrade_link net 2 3 ~factor:2.0;
  Alcotest.(check int) "no hard faults" 0 (Network.fault_count net);
  Alcotest.(check bool) "link not faulty" false (Network.is_link_faulty net 0 1);
  Alcotest.(check int) "two degraded" 2 (Network.degraded_link_count net);
  Alcotest.(check (list (pair (pair int int) (float 0.0))))
    "sorted inventory"
    [ ((0, 1), 16.0); ((2, 3), 2.0) ]
    (List.map (fun (u, v, f) -> ((u, v), f)) (Network.degraded_links net))

let () =
  Alcotest.run "protocol"
    [
      ( "protocol",
        [
          Alcotest.test_case "direct delivery" `Quick test_direct_delivery;
          Alcotest.test_case "multihop delivery" `Quick test_multihop_delivery;
          Alcotest.test_case "self delivery" `Quick test_self_delivery;
          Alcotest.test_case "faulty source" `Quick test_faulty_source_undeliverable;
          Alcotest.test_case "faulty destination" `Quick test_faulty_destination_undeliverable;
          Alcotest.test_case "reroute around fault" `Quick test_reroute_around_fault;
          Alcotest.test_case "mid-flight crash" `Quick test_mid_flight_crash;
          Alcotest.test_case "deliver_all" `Quick test_deliver_all_order;
          Alcotest.test_case "re-plan budget dead letter" `Quick
            test_replan_budget_dead_letter;
          Alcotest.test_case "deadline dead letter" `Quick test_deadline_dead_letter;
          Alcotest.test_case "exponential backoff" `Quick test_exponential_backoff;
          Alcotest.test_case "deadline cuts thrashing" `Quick
            test_deadline_cuts_thrashing;
          Alcotest.test_case "re-plan budget binds exactly" `Quick
            test_replan_budget_binds_exactly;
          Alcotest.test_case "exact deadline boundaries" `Quick
            test_deadline_exact_boundaries;
          Alcotest.test_case "hardened = legacy under static faults" `Quick
            test_hardened_matches_legacy_under_static_faults;
          Alcotest.test_case "broadcast full" `Quick test_broadcast_full;
          Alcotest.test_case "broadcast counter bound" `Quick test_broadcast_counter_bound;
          Alcotest.test_case "broadcast under faults" `Quick test_broadcast_with_faults_bounded_by_diameter;
          Alcotest.test_case "broadcast faulty origin" `Quick test_broadcast_faulty_origin_rejected;
          Alcotest.test_case "async broadcast" `Quick test_broadcast_async_reaches_all;
          Alcotest.test_case "async counter bound" `Quick test_broadcast_async_counter_cuts;
          Alcotest.test_case "async under faults" `Quick test_broadcast_async_under_faults;
          Alcotest.test_case "async faulty origin" `Quick test_broadcast_async_faulty_origin;
          Alcotest.test_case "degraded link slows delivery" `Quick
            test_degraded_link_slows_delivery;
          Alcotest.test_case "degraded transit per-route mean" `Quick
            test_degraded_transit_is_per_route_mean;
          Alcotest.test_case "degraded network has no faults" `Quick
            test_degraded_network_reports_no_faults;
        ] );
    ]
