open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let test_routes_every_pair () =
  let g = Families.petersen () in
  let c = Minimal_routing.make g in
  Alcotest.(check int) "n(n-1) routes" 90 (Routing.route_count c.Construction.routing)

let test_paths_are_shortest () =
  let g = Families.torus 4 4 in
  let c = Minimal_routing.make g in
  Routing.iter
    (fun src dst p ->
      Alcotest.(check (option int))
        (Printf.sprintf "(%d,%d) shortest" src dst)
        (Some (Path.length p))
        (Traversal.distance g src dst))
    c.Construction.routing;
  Alcotest.(check (float 1e-9)) "stretch 1" 1.0 (Routing.stretch c.Construction.routing)

let test_bidirectional_valid () =
  let g = Families.ccc 3 in
  let c = Minimal_routing.make g in
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ())

let test_unidirectional_variant () =
  let g = Families.cycle 7 in
  let c = Minimal_routing.make_unidirectional g in
  Alcotest.(check int) "routes" 42 (Routing.route_count c.Construction.routing);
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ())

let test_fault_free_diameter_matches_graph () =
  let g = Families.torus 4 4 in
  let c = Minimal_routing.make g in
  Alcotest.(check distance) "diameter 1 in route graph: every pair routed"
    (Metrics.Finite 1)
    (Surviving.diameter c.Construction.routing ~faults:(Bitset.create 16))

let test_no_claims () =
  let c = Minimal_routing.make (Families.cycle 6) in
  Alcotest.(check int) "no claims" 0 (List.length c.Construction.claims);
  Alcotest.(check bool) "unstructured" true
    (c.Construction.structure = Construction.Unstructured)

let test_survives_simple_fault () =
  let g = Families.cycle 8 in
  let c = Minimal_routing.make g in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  (* a single fault on a cycle leaves everyone mutually reachable *)
  Alcotest.(check bool) "finite" true
    (match v.Tolerance.worst with Metrics.Finite _ -> true | _ -> false)

let test_disconnected_graph () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let c = Minimal_routing.make g in
  (* only within-component pairs are routed *)
  Alcotest.(check int) "4 routes" 4 (Routing.route_count c.Construction.routing)

let () =
  Alcotest.run "minimal_routing"
    [
      ( "minimal_routing",
        [
          Alcotest.test_case "routes every pair" `Quick test_routes_every_pair;
          Alcotest.test_case "paths shortest" `Quick test_paths_are_shortest;
          Alcotest.test_case "bidirectional valid" `Quick test_bidirectional_valid;
          Alcotest.test_case "unidirectional" `Quick test_unidirectional_variant;
          Alcotest.test_case "fault-free diameter" `Quick test_fault_free_diameter_matches_graph;
          Alcotest.test_case "no claims" `Quick test_no_claims;
          Alcotest.test_case "single fault" `Quick test_survives_simple_fault;
          Alcotest.test_case "disconnected" `Quick test_disconnected_graph;
        ] );
    ]
