open Ftr_graph
open Ftr_core

let test_strategy_names () =
  Alcotest.(check string) "kernel" "kernel" (Builder.strategy_name Builder.Kernel);
  Alcotest.(check string) "tri" "tri-circular/full"
    (Builder.strategy_name Builder.Tri_circular_full)

let test_auto_cycle_large () =
  (* A 45-cycle admits the full tri-circular construction (bound 4). *)
  let choice = Builder.auto (Families.cycle 45) in
  Alcotest.(check int) "t" 1 choice.Builder.t;
  Alcotest.(check bool) "best bound 4" true
    (match choice.Builder.strategy with
    | Builder.Tri_circular_full | Builder.Bipolar_uni -> true
    | _ -> false)

let test_auto_torus () =
  (* torus 5x5: no two-trees (4-cycles), K = 5 >= t+2: circular. *)
  let choice = Builder.auto (Families.torus 5 5) in
  Alcotest.(check int) "t = 3" 3 choice.Builder.t;
  Alcotest.(check string) "circular" "circular"
    (Builder.strategy_name choice.Builder.strategy)

let test_auto_hypercube_kernel () =
  (* Q3: K is tiny, no two-trees: falls back to the kernel. *)
  let choice = Builder.auto (Families.hypercube 3) in
  Alcotest.(check string) "kernel" "kernel" (Builder.strategy_name choice.Builder.strategy)

let test_auto_prefer_bidirectional () =
  (* On C16 greedy finds K=5 (< 15 needed for full tri-circular), so
     the unidirectional bipolar routing (bound 4) wins by default;
     preferring bidirectional must pick a different strategy whose
     routing really is bidirectional. *)
  let g = Families.cycle 16 in
  let uni = Builder.auto g in
  let bi = Builder.auto ~prefer_bidirectional:true g in
  Alcotest.(check string) "default picks bipolar/uni" "bipolar/uni"
    (Builder.strategy_name uni.Builder.strategy);
  Alcotest.(check bool) "no uni when bidirectional preferred" true
    (bi.Builder.strategy <> Builder.Bipolar_uni);
  Alcotest.(check bool) "resulting routing is bidirectional" true
    (Ftr_core.Routing.kind bi.Builder.construction.Construction.routing
    = Ftr_core.Routing.Bidirectional)

let test_auto_rejects_disconnected () =
  Alcotest.(check bool) "disconnected" true
    (match Builder.auto (Graph.of_edges ~n:4 [ (0, 1); (2, 3) ]) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_auto_rejects_complete () =
  Alcotest.(check bool) "complete" true
    (match Builder.auto (Families.complete 5) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_applicable_ordering () =
  let strategies = Builder.applicable (Families.cycle 45) ~t:1 in
  Alcotest.(check bool) "kernel last" true
    (List.nth strategies (List.length strategies - 1) = Builder.Kernel);
  Alcotest.(check bool) "tri-circular available" true
    (List.mem Builder.Tri_circular_full strategies);
  Alcotest.(check bool) "bipolar available" true (List.mem Builder.Bipolar_uni strategies)

let test_auto_construction_tolerates () =
  let choice = Builder.auto (Families.cycle 20) in
  let c = choice.Builder.construction in
  let claim = Construction.strongest_claim c in
  let v = Tolerance.exhaustive c.Construction.routing ~f:claim.Construction.max_faults in
  Alcotest.(check bool) "claim holds" true
    (Tolerance.respects v ~bound:claim.Construction.diameter_bound)

let () =
  Alcotest.run "builder"
    [
      ( "builder",
        [
          Alcotest.test_case "strategy names" `Quick test_strategy_names;
          Alcotest.test_case "auto on long cycle" `Quick test_auto_cycle_large;
          Alcotest.test_case "auto on torus" `Quick test_auto_torus;
          Alcotest.test_case "auto kernel fallback" `Quick test_auto_hypercube_kernel;
          Alcotest.test_case "prefer bidirectional" `Quick test_auto_prefer_bidirectional;
          Alcotest.test_case "rejects disconnected" `Quick test_auto_rejects_disconnected;
          Alcotest.test_case "rejects complete" `Quick test_auto_rejects_complete;
          Alcotest.test_case "applicable ordering" `Quick test_applicable_ordering;
          Alcotest.test_case "auto construction tolerates" `Quick test_auto_construction_tolerates;
        ] );
    ]
