open Ftr_graph
open Ftr_core

let test_required_k () =
  Alcotest.(check int) "full t=1" 15 (Tri_circular.required_k ~t:1 ~variant:Tri_circular.Full);
  Alcotest.(check int) "full t=3" 27 (Tri_circular.required_k ~t:3 ~variant:Tri_circular.Full);
  Alcotest.(check int) "small t=1" 9 (Tri_circular.required_k ~t:1 ~variant:Tri_circular.Small);
  Alcotest.(check int) "small t=2" 9 (Tri_circular.required_k ~t:2 ~variant:Tri_circular.Small);
  Alcotest.(check int) "small t=3" 15 (Tri_circular.required_k ~t:3 ~variant:Tri_circular.Small)

let test_full_structure () =
  let g = Families.cycle 45 in
  let c = Tri_circular.make g ~t:1 ~variant:Tri_circular.Full in
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ());
  Alcotest.(check int) "K multiple of 3" 0 (List.length c.Construction.concentrator mod 3);
  let claim = List.hd c.Construction.claims in
  Alcotest.(check int) "bound 4" 4 claim.Construction.diameter_bound

let test_small_structure () =
  let g = Families.cycle 27 in
  let c = Tri_circular.make g ~t:1 ~variant:Tri_circular.Small in
  let claim = List.hd c.Construction.claims in
  Alcotest.(check int) "bound 5" 5 claim.Construction.diameter_bound;
  Alcotest.(check bool) "valid" true (Routing.validate c.Construction.routing = Ok ())

let test_exhaustive_full () =
  let g = Families.cycle 45 in
  let c = Tri_circular.make g ~t:1 ~variant:Tri_circular.Full in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 4" true (Tolerance.respects v ~bound:4);
  Alcotest.(check bool) "definitive" true v.Tolerance.definitive

let test_exhaustive_small () =
  let g = Families.cycle 27 in
  let c = Tri_circular.make g ~t:1 ~variant:Tri_circular.Small in
  let v = Tolerance.exhaustive c.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 5" true (Tolerance.respects v ~bound:5)

let test_rejects_undersized () =
  let g = Families.cycle 12 in
  Alcotest.(check bool) "too small" true
    (match Tri_circular.make g ~t:1 ~variant:Tri_circular.Full with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_trims_to_multiple_of_three () =
  let g = Families.cycle 50 in
  (* greedy gives 16 on a 50-cycle; construction must use 15 *)
  let c = Tri_circular.make g ~t:1 ~variant:Tri_circular.Full in
  Alcotest.(check int) "trimmed" 15 (List.length c.Construction.concentrator)

let test_full_beats_circular_bound () =
  (* The point of the tri-circular construction: every vertex pair has
     a common surviving concentrator member within 2 hops, giving 4
     instead of 6. Compare measured worsts. *)
  let g = Families.cycle 45 in
  let tri = Tri_circular.make g ~t:1 ~variant:Tri_circular.Full in
  let v = Tolerance.exhaustive tri.Construction.routing ~f:1 in
  (match v.Tolerance.worst with
  | Metrics.Finite d -> Alcotest.(check bool) "at most 4" true (d <= 4)
  | Metrics.Infinite -> Alcotest.fail "disconnected")

let () =
  Alcotest.run "tri_circular"
    [
      ( "tri_circular",
        [
          Alcotest.test_case "required_k" `Quick test_required_k;
          Alcotest.test_case "full structure" `Quick test_full_structure;
          Alcotest.test_case "small structure" `Quick test_small_structure;
          Alcotest.test_case "full exhaustive" `Quick test_exhaustive_full;
          Alcotest.test_case "small exhaustive" `Quick test_exhaustive_small;
          Alcotest.test_case "rejects undersized" `Quick test_rejects_undersized;
          Alcotest.test_case "trims to 3k" `Quick test_trims_to_multiple_of_three;
          Alcotest.test_case "beats circular" `Quick test_full_beats_circular_bound;
        ] );
    ]
