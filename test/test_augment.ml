open Ftr_graph
open Ftr_core

let test_adds_clique () =
  let g = Families.cycle 12 in
  let r = Augment.clique_concentrator ~m:[ 0; 6 ] g ~t:1 in
  Alcotest.(check int) "one edge added" 1 (List.length r.Augment.added);
  Alcotest.(check bool) "0-6 now an edge" true (Graph.mem_edge r.Augment.augmented 0 6);
  Alcotest.(check bool) "original untouched" false (Graph.mem_edge g 0 6)

let test_edge_cap () =
  (* at most t(t+1)/2 edges are needed when |M| = t+1 *)
  let g = Families.torus 5 5 in
  let r = Augment.clique_concentrator g ~t:3 in
  Alcotest.(check bool) "cap" true (List.length r.Augment.added <= 3 * 4 / 2)

let test_existing_edges_not_duplicated () =
  let g = Families.cycle 6 in
  (* M = {0, 3}: not adjacent; M = {0,1,3} via explicit m with a pair
     already adjacent *)
  let r = Augment.clique_concentrator ~m:[ 0; 1; 3 ] g ~t:1 in
  Alcotest.(check int) "only missing pairs" 2 (List.length r.Augment.added)

let test_claims_3_t () =
  let g = Families.cycle 12 in
  let r = Augment.clique_concentrator g ~t:1 in
  let claim = List.hd r.Augment.construction.Construction.claims in
  Alcotest.(check int) "bound 3" 3 claim.Construction.diameter_bound;
  Alcotest.(check int) "faults t" 1 claim.Construction.max_faults;
  Alcotest.(check string) "name" "kernel+clique" r.Augment.construction.Construction.name

let test_exhaustive_bound_3 () =
  let g = Families.cycle 12 in
  let r = Augment.clique_concentrator g ~t:1 in
  let v = Tolerance.exhaustive r.Augment.construction.Construction.routing ~f:1 in
  Alcotest.(check bool) "within 3" true (Tolerance.respects v ~bound:3)

let test_exhaustive_ccc3 () =
  let g = Families.ccc 3 in
  let r = Augment.clique_concentrator g ~t:2 in
  let v = Tolerance.exhaustive r.Augment.construction.Construction.routing ~f:2 in
  Alcotest.(check bool) "within 3" true (Tolerance.respects v ~bound:3)

let test_ring_adds_linear_edges () =
  let g = Families.torus 5 5 in
  let clique = Augment.clique_concentrator g ~t:3 in
  let ring = Augment.ring_concentrator g ~t:3 in
  let m = List.length ring.Augment.construction.Construction.concentrator in
  Alcotest.(check bool) "ring adds <= |M| edges" true
    (List.length ring.Augment.added <= m);
  Alcotest.(check bool) "ring adds fewer than clique" true
    (List.length ring.Augment.added <= List.length clique.Augment.added);
  Alcotest.(check int) "ring makes no claim" 0
    (List.length ring.Augment.construction.Construction.claims)

let test_ring_two_member_separator () =
  let g = Families.cycle 12 in
  let r = Augment.ring_concentrator ~m:[ 0; 6 ] g ~t:1 in
  Alcotest.(check (list (pair int int))) "single joining edge" [ (0, 6) ] r.Augment.added

let test_ring_measured_tolerance () =
  (* No theorem covers this; measure it. The kernel base guarantees
     max(2t,4) regardless, so the ring can only help. *)
  let g = Families.ccc 3 in
  let r = Augment.ring_concentrator g ~t:2 in
  let v = Tolerance.exhaustive r.Augment.construction.Construction.routing ~f:2 in
  Alcotest.(check bool) "within the kernel bound" true (Tolerance.respects v ~bound:4)

let test_routing_lives_on_augmented () =
  let g = Families.cycle 12 in
  let r = Augment.clique_concentrator ~m:[ 0; 6 ] g ~t:1 in
  let routing = r.Augment.construction.Construction.routing in
  Alcotest.(check bool) "graph is augmented" true
    (Graph.equal (Routing.graph routing) r.Augment.augmented);
  (* the clique edge itself is a route *)
  Alcotest.(check bool) "direct M route" true (Routing.mem routing 0 6)

let () =
  Alcotest.run "augment"
    [
      ( "augment",
        [
          Alcotest.test_case "adds clique" `Quick test_adds_clique;
          Alcotest.test_case "edge cap" `Quick test_edge_cap;
          Alcotest.test_case "no duplicates" `Quick test_existing_edges_not_duplicated;
          Alcotest.test_case "claims (3,t)" `Quick test_claims_3_t;
          Alcotest.test_case "exhaustive cycle" `Quick test_exhaustive_bound_3;
          Alcotest.test_case "exhaustive ccc3" `Slow test_exhaustive_ccc3;
          Alcotest.test_case "augmented routing" `Quick test_routing_lives_on_augmented;
          Alcotest.test_case "ring: O(t) edges" `Quick test_ring_adds_linear_edges;
          Alcotest.test_case "ring: |M|=2" `Quick test_ring_two_member_separator;
          Alcotest.test_case "ring: measured" `Slow test_ring_measured_tolerance;
        ] );
    ]
