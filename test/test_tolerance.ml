open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let test_subsets_up_to () =
  let sets = List.of_seq (Tolerance.subsets_up_to [ 1; 2; 3 ] 2) in
  Alcotest.(check int) "1 + 3 + 3" 7 (List.length sets);
  Alcotest.(check bool) "has empty" true (List.mem [] sets);
  Alcotest.(check bool) "has {1,2}" true (List.mem [ 1; 2 ] sets);
  Alcotest.(check bool) "no triples" false (List.mem [ 1; 2; 3 ] sets);
  (* all distinct *)
  Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq compare sets))

let test_subsets_zero () =
  let sets = List.of_seq (Tolerance.subsets_up_to [ 1; 2 ] 0) in
  Alcotest.(check (list (list int))) "only empty" [ [] ] sets

let test_count_subsets () =
  Alcotest.(check int) "C(5,<=2) = 16" 16 (Tolerance.count_subsets_up_to ~n:5 ~k:2);
  Alcotest.(check int) "C(3,<=3) = 8" 8 (Tolerance.count_subsets_up_to ~n:3 ~k:3);
  Alcotest.(check int) "k=0" 1 (Tolerance.count_subsets_up_to ~n:100 ~k:0);
  Alcotest.(check bool) "saturates" true
    (Tolerance.count_subsets_up_to ~n:500 ~k:250 > 1_000_000_000)

let edge_routing g =
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  r

let test_exhaustive_cycle () =
  let r = edge_routing (Families.cycle 6) in
  let v = Tolerance.exhaustive r ~f:1 in
  Alcotest.(check bool) "definitive" true v.Tolerance.definitive;
  Alcotest.(check int) "7 sets" 7 v.Tolerance.sets_checked;
  (* one fault on a 6-cycle: worst diameter 4 *)
  Alcotest.(check distance) "worst 4" (Metrics.Finite 4) v.Tolerance.worst;
  Alcotest.(check int) "witness size" 1 (List.length v.Tolerance.witness)

let test_exhaustive_finds_disconnection () =
  let r = edge_routing (Families.cycle 6) in
  let v = Tolerance.exhaustive r ~f:2 in
  Alcotest.(check distance) "two faults disconnect a cycle" Metrics.Infinite
    v.Tolerance.worst

let test_random_reproducible () =
  let r = edge_routing (Families.cycle 8) in
  let run () =
    Tolerance.random r ~f:2 ~rng:(Random.State.make [| 5 |]) ~samples:50
  in
  let a = run () and b = run () in
  Alcotest.(check distance) "same worst" a.Tolerance.worst b.Tolerance.worst;
  Alcotest.(check int) "samples + empty" 51 a.Tolerance.sets_checked

let test_adversarial_pools () =
  let r = edge_routing (Families.cycle 8) in
  (* pool {0,4} disconnects the cycle when both die *)
  let v = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 4 ] ] in
  Alcotest.(check distance) "finds the cut" Metrics.Infinite v.Tolerance.worst;
  Alcotest.(check (list int)) "witness" [ 0; 4 ] (List.sort compare v.Tolerance.witness)

let test_adversarial_cap () =
  let r = edge_routing (Families.cycle 8) in
  let v = Tolerance.adversarial ~per_pool_cap:3 r ~f:2 ~pools:[ [ 0; 1; 2; 3 ] ] in
  Alcotest.(check int) "capped" 3 v.Tolerance.sets_checked

let test_adversarial_dedupes_across_pools () =
  let r = edge_routing (Families.cycle 8) in
  let one = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 1; 2 ] ] in
  let dup = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 1; 2 ]; [ 2; 1; 0 ] ] in
  Alcotest.(check int) "identical pool adds nothing" one.Tolerance.sets_checked
    dup.Tolerance.sets_checked;
  (* Overlapping pools only pay for the subsets the first one missed:
     {0,1,2} and {1,2,3} share the empty set, {1}, {2} and {1,2}. *)
  let overlap = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check int) "overlap counted once" (7 + 3) overlap.Tolerance.sets_checked

let test_evaluate_switches_modes () =
  let g = Families.cycle 6 in
  let c = Kernel.make g ~t:1 in
  let rng = Random.State.make [| 1 |] in
  let small = Tolerance.evaluate ~rng ~exhaustive_budget:100 c ~f:1 in
  Alcotest.(check bool) "exhaustive for small" true small.Tolerance.definitive;
  let forced = Tolerance.evaluate ~rng ~exhaustive_budget:2 ~samples:10 c ~f:1 in
  Alcotest.(check bool) "sampled when over budget" false forced.Tolerance.definitive

let test_respects () =
  let v =
    { Tolerance.worst = Metrics.Finite 4; witness = []; sets_checked = 1; definitive = true }
  in
  Alcotest.(check bool) "within" true (Tolerance.respects v ~bound:4);
  Alcotest.(check bool) "beyond" false (Tolerance.respects v ~bound:3);
  let inf = { v with Tolerance.worst = Metrics.Infinite } in
  Alcotest.(check bool) "infinite fails" false (Tolerance.respects inf ~bound:1000)

let () =
  Alcotest.run "tolerance"
    [
      ( "tolerance",
        [
          Alcotest.test_case "subsets_up_to" `Quick test_subsets_up_to;
          Alcotest.test_case "subsets k=0" `Quick test_subsets_zero;
          Alcotest.test_case "count_subsets" `Quick test_count_subsets;
          Alcotest.test_case "exhaustive cycle" `Quick test_exhaustive_cycle;
          Alcotest.test_case "exhaustive disconnection" `Quick test_exhaustive_finds_disconnection;
          Alcotest.test_case "random reproducible" `Quick test_random_reproducible;
          Alcotest.test_case "adversarial pools" `Quick test_adversarial_pools;
          Alcotest.test_case "adversarial cap" `Quick test_adversarial_cap;
          Alcotest.test_case "adversarial dedupe" `Quick
            test_adversarial_dedupes_across_pools;
          Alcotest.test_case "evaluate mode switch" `Quick test_evaluate_switches_modes;
          Alcotest.test_case "respects" `Quick test_respects;
        ] );
    ]
