open Ftr_graph
open Ftr_core

let distance = Alcotest.testable Metrics.pp_distance ( = )

let test_subsets_up_to () =
  let sets = List.of_seq (Tolerance.subsets_up_to [ 1; 2; 3 ] 2) in
  Alcotest.(check int) "1 + 3 + 3" 7 (List.length sets);
  Alcotest.(check bool) "has empty" true (List.mem [] sets);
  Alcotest.(check bool) "has {1,2}" true (List.mem [ 1; 2 ] sets);
  Alcotest.(check bool) "no triples" false (List.mem [ 1; 2; 3 ] sets);
  (* all distinct *)
  Alcotest.(check int) "distinct" 7 (List.length (List.sort_uniq compare sets))

let test_subsets_zero () =
  let sets = List.of_seq (Tolerance.subsets_up_to [ 1; 2 ] 0) in
  Alcotest.(check (list (list int))) "only empty" [ [] ] sets

let test_count_subsets () =
  Alcotest.(check int) "C(5,<=2) = 16" 16 (Tolerance.count_subsets_up_to ~n:5 ~k:2);
  Alcotest.(check int) "C(3,<=3) = 8" 8 (Tolerance.count_subsets_up_to ~n:3 ~k:3);
  Alcotest.(check int) "k=0" 1 (Tolerance.count_subsets_up_to ~n:100 ~k:0);
  Alcotest.(check bool) "saturates" true
    (Tolerance.count_subsets_up_to ~n:500 ~k:250 > 1_000_000_000)

let edge_routing g =
  let r = Routing.create g Routing.Bidirectional in
  Routing.add_edge_routes r;
  r

let test_exhaustive_cycle () =
  let r = edge_routing (Families.cycle 6) in
  let v = Tolerance.exhaustive r ~f:1 in
  Alcotest.(check bool) "definitive" true v.Tolerance.definitive;
  Alcotest.(check int) "7 sets" 7 v.Tolerance.sets_checked;
  (* one fault on a 6-cycle: worst diameter 4 *)
  Alcotest.(check distance) "worst 4" (Metrics.Finite 4) v.Tolerance.worst;
  Alcotest.(check int) "witness size" 1 (List.length v.Tolerance.witness)

let test_exhaustive_finds_disconnection () =
  let r = edge_routing (Families.cycle 6) in
  let v = Tolerance.exhaustive r ~f:2 in
  Alcotest.(check distance) "two faults disconnect a cycle" Metrics.Infinite
    v.Tolerance.worst

let test_random_reproducible () =
  let r = edge_routing (Families.cycle 8) in
  let run () =
    Tolerance.random r ~f:2 ~rng:(Random.State.make [| 5 |]) ~samples:50
  in
  let a = run () and b = run () in
  Alcotest.(check distance) "same worst" a.Tolerance.worst b.Tolerance.worst;
  Alcotest.(check int) "samples + empty" 51 a.Tolerance.sets_checked

let test_adversarial_pools () =
  let r = edge_routing (Families.cycle 8) in
  (* pool {0,4} disconnects the cycle when both die *)
  let v = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 4 ] ] in
  Alcotest.(check distance) "finds the cut" Metrics.Infinite v.Tolerance.worst;
  Alcotest.(check (list int)) "witness" [ 0; 4 ] (List.sort compare v.Tolerance.witness)

let test_adversarial_cap () =
  let r = edge_routing (Families.cycle 8) in
  let v = Tolerance.adversarial ~per_pool_cap:3 r ~f:2 ~pools:[ [ 0; 1; 2; 3 ] ] in
  Alcotest.(check int) "capped" 3 v.Tolerance.sets_checked

let test_adversarial_dedupes_across_pools () =
  let r = edge_routing (Families.cycle 8) in
  let one = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 1; 2 ] ] in
  let dup = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 1; 2 ]; [ 2; 1; 0 ] ] in
  Alcotest.(check int) "identical pool adds nothing" one.Tolerance.sets_checked
    dup.Tolerance.sets_checked;
  (* Overlapping pools only pay for the subsets the first one missed:
     {0,1,2} and {1,2,3} share the empty set, {1}, {2} and {1,2}. *)
  let overlap = Tolerance.adversarial r ~f:2 ~pools:[ [ 0; 1; 2 ]; [ 1; 2; 3 ] ] in
  Alcotest.(check int) "overlap counted once" (7 + 3) overlap.Tolerance.sets_checked

let test_evaluate_switches_modes () =
  let g = Families.cycle 6 in
  let c = Kernel.make g ~t:1 in
  let rng = Random.State.make [| 1 |] in
  let small = Tolerance.evaluate ~rng ~exhaustive_budget:100 c ~f:1 in
  Alcotest.(check bool) "exhaustive for small" true small.Tolerance.definitive;
  let forced = Tolerance.evaluate ~rng ~exhaustive_budget:2 ~samples:10 c ~f:1 in
  Alcotest.(check bool) "sampled when over budget" false forced.Tolerance.definitive

let test_respects () =
  let v =
    { Tolerance.worst = Metrics.Finite 4; witness = []; sets_checked = 1; definitive = true }
  in
  Alcotest.(check bool) "within" true (Tolerance.respects v ~bound:4);
  Alcotest.(check bool) "beyond" false (Tolerance.respects v ~bound:3);
  let inf = { v with Tolerance.worst = Metrics.Infinite } in
  Alcotest.(check bool) "infinite fails" false (Tolerance.respects inf ~bound:1000)

(* ---------------- sampled probing at scale ---------------- *)

(* probe_distance answers off Routing.find with O(1) state; at
   bound <= 2 with the full budget it must agree exactly with the
   compiled engine's route-graph distance, truncated at the bound. *)
let test_probe_agrees_with_compiled () =
  let c = Kernel.make (Families.torus 4 4) ~t:3 in
  let r = c.Construction.routing in
  let n = Graph.n (Routing.graph r) in
  let budget = (2 * n) + 1 in
  let rng = Random.State.make [| 42 |] in
  for _ = 1 to 50 do
    let faults = Bitset.create n in
    for _ = 1 to 2 do
      Bitset.add faults (Random.State.int rng n)
    done;
    let src = Random.State.int rng n and dst = Random.State.int rng n in
    if src <> dst && (not (Bitset.mem faults src)) && not (Bitset.mem faults dst)
    then
      List.iter
        (fun bound ->
          let probed =
            Surviving.probe_distance r ~faults ~src ~dst ~bound ~budget
          in
          let exact = Surviving.distance r ~faults src dst in
          let expected =
            match exact with
            | Metrics.Finite k when k <= bound -> Metrics.Finite k
            | _ -> Metrics.Infinite
          in
          Alcotest.check distance
            (Printf.sprintf "pair (%d,%d) bound %d" src dst bound)
            expected probed)
        [ 1; 2 ]
  done

(* A star's only routes run through the hub: one hub fault breaks
   every leaf pair, and the endpoint-neighborhood adversarial sets
   (every leaf's neighborhood is exactly {hub}) must find it. *)
let star_routing () =
  let n = 8 in
  let g = Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1))) in
  Routing.of_compact g Routing.Bidirectional (Compact.bfs_tree g ~root:0)

let test_sampled_flags_star_hub () =
  let r = star_routing () in
  let v =
    Tolerance.sampled r ~f:1 ~bound:5
      ~rng:(Random.State.make [| 7 |])
      ~sets:4 ~pairs:16
  in
  Alcotest.(check bool) "violation found" false v.Tolerance.sv_holds;
  Alcotest.(check (list int)) "hub is the witness" [ 0 ]
    v.Tolerance.sv_witness_faults;
  Alcotest.check distance "worst is infinite" Metrics.Infinite
    v.Tolerance.sv_worst

(* A fault-tolerant table passes: kernel torus at its claimed (6, 3)
   budget (Theorem 3). The default probe budget of 2n + 1 is sized for
   bound <= 2; deep bounds on tiny graphs need more probes or the
   checker conservatively flags on exhaustion, so spend them here. *)
let test_sampled_accepts_strong_routing () =
  let c = Kernel.make (Families.torus 5 5) ~t:3 in
  let v =
    Tolerance.sampled ~probe_budget:10_000 c.Construction.routing ~f:3 ~bound:6
      ~rng:(Random.State.make [| 11 |])
      ~sets:32 ~pairs:40
  in
  Alcotest.(check bool) "holds" true v.Tolerance.sv_holds;
  Alcotest.(check bool) "work accounted" true
    (v.Tolerance.sv_sets_checked > 0 && v.Tolerance.sv_pairs_checked > 0)

(* Verdicts are a function of the rng, never of the schedule. *)
let test_sampled_jobs_independent () =
  let run routing jobs =
    Tolerance.sampled ~jobs routing ~f:2 ~bound:2
      ~rng:(Random.State.make [| 23 |])
      ~sets:16 ~pairs:24
  in
  List.iter
    (fun routing ->
      let a = run routing 1 and b = run routing 4 in
      Alcotest.(check bool) "same holds" a.Tolerance.sv_holds b.Tolerance.sv_holds;
      Alcotest.check distance "same worst" a.Tolerance.sv_worst
        b.Tolerance.sv_worst;
      Alcotest.(check (list int)) "same witness" a.Tolerance.sv_witness_faults
        b.Tolerance.sv_witness_faults;
      Alcotest.(check (option (pair int int))) "same pair"
        a.Tolerance.sv_witness_pair b.Tolerance.sv_witness_pair)
    [ (Kernel.make (Families.torus 4 4) ~t:3).Construction.routing; star_routing () ]

let () =
  Alcotest.run "tolerance"
    [
      ( "tolerance",
        [
          Alcotest.test_case "subsets_up_to" `Quick test_subsets_up_to;
          Alcotest.test_case "subsets k=0" `Quick test_subsets_zero;
          Alcotest.test_case "count_subsets" `Quick test_count_subsets;
          Alcotest.test_case "exhaustive cycle" `Quick test_exhaustive_cycle;
          Alcotest.test_case "exhaustive disconnection" `Quick test_exhaustive_finds_disconnection;
          Alcotest.test_case "random reproducible" `Quick test_random_reproducible;
          Alcotest.test_case "adversarial pools" `Quick test_adversarial_pools;
          Alcotest.test_case "adversarial cap" `Quick test_adversarial_cap;
          Alcotest.test_case "adversarial dedupe" `Quick
            test_adversarial_dedupes_across_pools;
          Alcotest.test_case "evaluate mode switch" `Quick test_evaluate_switches_modes;
          Alcotest.test_case "respects" `Quick test_respects;
        ] );
      ( "sampled",
        [
          Alcotest.test_case "probe agrees with compiled" `Quick
            test_probe_agrees_with_compiled;
          Alcotest.test_case "flags a star hub" `Quick test_sampled_flags_star_hub;
          Alcotest.test_case "accepts a strong routing" `Quick
            test_sampled_accepts_strong_routing;
          Alcotest.test_case "jobs-independent" `Quick
            test_sampled_jobs_independent;
        ] );
    ]
