open Ftr_graph

let fin d = Metrics.Finite d

let distance = Alcotest.testable Metrics.pp_distance ( = )

let test_diameter_families () =
  Alcotest.(check distance) "cycle 8" (fin 4) (Metrics.diameter (Families.cycle 8));
  Alcotest.(check distance) "path 5" (fin 4) (Metrics.diameter (Families.path_graph 5));
  Alcotest.(check distance) "hypercube 4" (fin 4) (Metrics.diameter (Families.hypercube 4));
  Alcotest.(check distance) "complete 6" (fin 1) (Metrics.diameter (Families.complete 6));
  Alcotest.(check distance) "petersen" (fin 2) (Metrics.diameter (Families.petersen ()))

let test_diameter_edge_cases () =
  Alcotest.(check distance) "single vertex" (fin 0) (Metrics.diameter (Graph.empty 1));
  Alcotest.(check distance) "disconnected" Metrics.Infinite
    (Metrics.diameter (Graph.of_edges ~n:3 [ (0, 1) ]))

let test_radius () =
  (* A star has radius 1 (the hub) and diameter 2. *)
  let g = Families.star 6 in
  Alcotest.(check distance) "radius" (fin 1) (Metrics.radius g);
  Alcotest.(check distance) "diameter" (fin 2) (Metrics.diameter g)

let test_eccentricity () =
  let g = Families.path_graph 5 in
  Alcotest.(check distance) "end" (fin 4) (Metrics.eccentricity g 0);
  Alcotest.(check distance) "middle" (fin 2) (Metrics.eccentricity g 2)

let test_girth () =
  Alcotest.(check (option int)) "cycle 7" (Some 7) (Metrics.girth (Families.cycle 7));
  Alcotest.(check (option int)) "petersen" (Some 5) (Metrics.girth (Families.petersen ()));
  Alcotest.(check (option int)) "hypercube" (Some 4) (Metrics.girth (Families.hypercube 3));
  Alcotest.(check (option int)) "complete" (Some 3) (Metrics.girth (Families.complete 4));
  Alcotest.(check (option int)) "tree" None (Metrics.girth (Families.path_graph 6));
  Alcotest.(check (option int)) "ccc(5) girth 5" (Some 5) (Metrics.girth (Families.ccc 5))

let test_distance_order () =
  Alcotest.(check bool) "finite le inf" true
    (Metrics.distance_le (fin 100) Metrics.Infinite);
  Alcotest.(check bool) "inf not le finite" false
    (Metrics.distance_le Metrics.Infinite (fin 100));
  Alcotest.(check distance) "max" Metrics.Infinite
    (Metrics.max_distance (fin 3) Metrics.Infinite);
  Alcotest.(check distance) "max finite" (fin 5) (Metrics.max_distance (fin 3) (fin 5))

let test_average_degree () =
  Alcotest.(check (float 1e-9)) "cycle" 2.0 (Metrics.average_degree (Families.cycle 9));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Metrics.average_degree (Graph.empty 0))

let test_degree_histogram () =
  let g = Families.star 4 in
  Alcotest.(check (list (pair int int))) "histogram" [ (1, 3); (3, 1) ]
    (Metrics.degree_histogram g)

let () =
  Alcotest.run "metrics"
    [
      ( "metrics",
        [
          Alcotest.test_case "diameter families" `Quick test_diameter_families;
          Alcotest.test_case "diameter edge cases" `Quick test_diameter_edge_cases;
          Alcotest.test_case "radius" `Quick test_radius;
          Alcotest.test_case "eccentricity" `Quick test_eccentricity;
          Alcotest.test_case "girth" `Quick test_girth;
          Alcotest.test_case "distance order" `Quick test_distance_order;
          Alcotest.test_case "average degree" `Quick test_average_degree;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
        ] );
    ]
